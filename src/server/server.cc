#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/engine.h"
#include "graph/io.h"
#include "util/fault.h"

namespace scpm {

namespace {

/// Writes the whole buffer, retrying partial writes; SIGPIPE suppressed
/// so a client hanging up mid-response just fails the send.
bool SendAll(int fd, const std::string& data) {
  if (FaultInjector::Instance().ShouldFail(fault::kSocketSend)) {
    return false;  // simulated client hang-up mid-response
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Truncates `path` after its first `lines` newline-terminated lines.
/// Returns false when the file holds fewer lines than that (the durable
/// count outran the file — the snapshot can't be resumed against it).
bool TruncateToLines(const std::string& path, std::uint64_t lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return lines == 0;
  std::uint64_t seen = 0;
  std::uint64_t offset = 0;
  char c;
  while (seen < lines && in.get(c)) {
    ++offset;
    if (c == '\n') ++seen;
  }
  in.close();
  if (seen < lines) return false;
  return ::truncate(path.c_str(), static_cast<off_t>(offset)) == 0;
}

}  // namespace

ScpmServer::ScpmServer(std::shared_ptr<const AttributedGraph> graph,
                       ServerOptions options)
    : options_(options),
      slice_policy_{options.slice_ms, options.slice_evals},
      pool_(std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options.threads))),
      // The per-run "2x threads" intra-search slot rule, applied once to
      // the shared pool: concurrent queries borrow decomposition slots
      // from one server-wide pot instead of oversubscribing per query.
      intra_budget_(2 * std::max<std::size_t>(1, options.threads)),
      graph_(std::move(graph)) {
  if (options_.memo.max_bytes > 0) {
    memo_ = std::make_unique<MemoCache>(options_.memo);
    memo_->BeginEpoch(epoch_);
  }
}

ScpmServer::ScpmServer(const AttributedGraph* graph, ServerOptions options)
    : ScpmServer(std::shared_ptr<const AttributedGraph>(graph,
                                                        [](const auto*) {}),
                 options) {}

ScpmServer::~ScpmServer() { Shutdown(); }

void ScpmServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || stopping_) return;
  started_ = true;
  const std::size_t drivers = std::max<std::size_t>(1, options_.max_concurrent);
  drivers_.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

void ScpmServer::Shutdown() {
  std::vector<std::thread> drivers;
  std::vector<std::shared_ptr<QuerySession>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    drivers.swap(drivers_);
    for (const auto& [id, session] : sessions_) {
      if (!session->terminal()) to_cancel.push_back(session);
    }
  }
  queue_cv_.notify_all();
  // Cancel queued sessions (their next driver pickup terminalizes them)
  // and cut running ones at their next wave boundary. Drivers drain the
  // queue before exiting, so every preempted session reaches a terminal
  // state.
  for (const std::shared_ptr<QuerySession>& session : to_cancel) {
    session->Cancel();
  }
  for (std::thread& t : drivers) t.join();
  // Wake a blocking Serve() accept loop, if one is running. A pipe write
  // is the only portably reliable wakeup — shutdown() on a listening
  // AF_UNIX socket does not interrupt accept() everywhere.
  const int wake = serve_wake_fd_.load();
  if (wake >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake, &byte, 1);
  }
}

Status ScpmServer::Recover() {
  if (options_.state_dir.empty()) return Status::OK();
  Result<std::unique_ptr<StateStore>> opened =
      StateStore::Open(options_.state_dir);
  if (!opened.ok()) return opened.status();

  std::unique_ptr<StateStore> store = std::move(opened).value();
  store->set_checkpoint_format(options_.ckpt_format);
  const RecoveryScan scan = store->Scan();
  recovery_warnings_ = scan.warnings;

  std::shared_ptr<const AttributedGraph> graph;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_ || stopping_) {
      return Status::Internal("Recover() must run before Start()");
    }
    graph = graph_;
  }
  const std::uint64_t vertices =
      static_cast<std::uint64_t>(graph->NumVertices());
  const std::uint64_t edges = graph->graph().NumEdges();
  const std::uint64_t attributes = graph->NumAttributes();
  // Epoch adoption: same graph shape -> continue the journal's epoch
  // (checkpoints stay valid); different shape -> everything in the
  // journal is stale, move past its epoch so the scan's own epoch
  // filter would discard it even on a later scan.
  const bool shape_matches = scan.epoch != 0 && scan.vertices == vertices &&
                             scan.edges == edges &&
                             scan.attributes == attributes;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (scan.epoch != 0) epoch_ = shape_matches ? scan.epoch : scan.epoch + 1;
    if (scan.max_id >= next_id_) next_id_ = scan.max_id + 1;
    epoch = epoch_;
    store_ = std::move(store);
  }
  if (memo_ != nullptr) memo_->BeginEpoch(epoch);
  (void)store_->AppendServer(epoch, vertices, edges, attributes);

  if (scan.epoch != 0 && !shape_matches) {
    for (const RecoveredQuery& q : scan.queries) {
      recovery_warnings_.push_back(
          "query " + std::to_string(q.id) +
          " pinned a graph whose shape changed; discarded as stale");
    }
    return Status::OK();
  }

  for (const RecoveredQuery& q : scan.queries) {
    Result<QuerySpec> parsed = ParseQuerySpec(q.query);
    if (!parsed.ok()) {
      // Covers both malformed JSON members and well-formed specs that
      // fail Validate() (ParseQuerySpec is the single gate); the typed
      // status says which.
      recovery_warnings_.push_back("query " + std::to_string(q.id) +
                                   " has a journaled spec the binder "
                                   "rejects (" +
                                   parsed.status().ToString() + "); skipped");
      continue;
    }
    QuerySpec spec = std::move(parsed).value();
    // Where can the query restart? Resuming mid-walk needs both a valid
    // snapshot bound to this graph+options AND a sink whose emitted
    // prefix is durable. Only jsonl qualifies: its lines are on disk,
    // truncated here to the snapshot's atomically-counted prefix (lines
    // written after the snapshot re-emit on resume). Accumulate/topk
    // sinks lose their in-memory state with the process, so they re-run
    // from scratch — the engine is deterministic, the client still gets
    // the byte-identical result, just recomputed.
    bool resume = q.has_checkpoint;
    if (resume && (q.checkpoint.num_vertices != graph->NumVertices() ||
                   q.checkpoint.num_edges != edges ||
                   q.checkpoint.num_attributes != attributes ||
                   q.checkpoint.options_fingerprint !=
                       ScpmEngine::OptionsFingerprint(
                           spec.options, spec.options.min_delta > 0.0))) {
      recovery_warnings_.push_back(
          "query " + std::to_string(q.id) +
          " checkpoint does not bind to the current graph/options; "
          "re-running from scratch");
      resume = false;
    }
    if (resume && spec.sink != QuerySpec::Sink::kJsonl) resume = false;
    if (resume && !TruncateToLines(spec.jsonl_path, q.jsonl_lines)) {
      recovery_warnings_.push_back(
          "query " + std::to_string(q.id) + " output " + spec.jsonl_path +
          " is shorter than its snapshot recorded; re-running from scratch");
      resume = false;
    }

    auto session = std::make_shared<QuerySession>(q.id, std::move(spec));
    session->ApplyDefaultDeadline(options_.default_deadline_ms);
    session->EnableDurability(store_.get(), options_.checkpoint_interval_ms);
    if (resume) {
      session->SeedRecovered(q.checkpoint, q.emitted, q.patterns_emitted,
                             q.jsonl_lines);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions_.emplace(session->id(), session);
      // fresh=false: recovered queries were admitted before the crash
      // and bypass the admission queue_depth on the way back in.
      queue_.push_back(QueueItem{session, /*fresh=*/false});
      ++recovered_queries_;
    }
    queue_cv_.notify_one();
  }
  return Status::OK();
}

void ScpmServer::Drain() {
  std::vector<std::thread> drivers;
  std::vector<std::shared_ptr<QuerySession>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || draining_) return;
    draining_ = true;
    drivers.swap(drivers_);
    for (const auto& [id, session] : sessions_) {
      if (!session->terminal()) live.push_back(session);
    }
  }
  queue_cv_.notify_all();
  // Suspend in a loop until the drivers are gone: a driver that was
  // between queue pop and slice start when the first sweep ran only
  // registers its token afterwards, so one latch pass isn't enough.
  std::atomic<bool> joined{false};
  std::thread suspender([&live, &joined] {
    while (!joined.load()) {
      for (const std::shared_ptr<QuerySession>& session : live) {
        session->Suspend();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  for (std::thread& t : drivers) t.join();
  joined.store(true);
  suspender.join();
  // Single-threaded now: persist every suspended query's latest
  // snapshot so Recover() on this state_dir resumes instead of
  // re-running. Best-effort, like all durability writes.
  if (store_ != nullptr) {
    for (const std::shared_ptr<QuerySession>& session : live) {
      if (session->terminal()) {
        JournalTerminal(*session);
      } else {
        session->PersistSnapshot(store_.get());
      }
    }
  }
  // Wake a blocking Serve() loop the same way Shutdown() does.
  const int wake = serve_wake_fd_.load();
  if (wake >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake, &byte, 1);
  }
}

std::uint64_t ScpmServer::recovered_queries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_queries_;
}

Result<std::shared_ptr<QuerySession>> ScpmServer::Submit(QuerySpec spec) {
  std::shared_ptr<QuerySession> session;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++rejected_;
      return Status::Internal("server is shutting down");
    }
    if (draining_) {
      // Deliberately NOT kResourceExhausted: a drain never un-fills, so
      // retry loops keyed on that code must not spin against it.
      ++rejected_;
      return Status::Internal("server is draining");
    }
    if (queued_fresh_ >= options_.queue_depth) {
      ++rejected_;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queued_fresh_) + "/" +
          std::to_string(options_.queue_depth) + " queued)");
    }
    session = std::make_shared<QuerySession>(next_id_++, std::move(spec));
    session->ApplyDefaultDeadline(options_.default_deadline_ms);
    if (store_ != nullptr) {
      session->EnableDurability(store_.get(), options_.checkpoint_interval_ms);
    }
    sessions_.emplace(session->id(), session);
    queue_.push_back(QueueItem{session, /*fresh=*/true});
    ++queued_fresh_;
    ++submitted_;
    epoch = epoch_;
  }
  // Journal the admission outside the lock (fsync per record). Best
  // effort like every durability write: on failure the query still runs,
  // it just won't be recovered after a crash.
  if (store_ != nullptr) {
    (void)store_->AppendAdmit(session->id(), epoch,
                              QuerySpecToJson(session->spec()));
  }
  queue_cv_.notify_one();
  return session;
}

std::shared_ptr<QuerySession> ScpmServer::Find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<QueryState> ScpmServer::Cancel(std::uint64_t id) {
  std::shared_ptr<QuerySession> session = Find(id);
  if (session == nullptr) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState observed = session->Cancel();
  // Cancelled-while-queued terminalizes synchronously, with no driver
  // pickup guaranteed to follow (drain!) — journal the terminal here.
  // Running sessions terminalize on their driver, which journals then;
  // a duplicate record (driver still pops the queued session) is
  // harmless, the scan keeps terminal state idempotent.
  if (observed == QueryState::kQueued) JournalTerminal(*session);
  return observed;
}

void ScpmServer::JournalTerminal(const QuerySession& session) {
  if (store_ == nullptr) return;
  (void)store_->AppendTerminal(session.id(), QueryStateName(session.state()));
  store_->RemoveCheckpoint(session.id());
}

std::shared_ptr<const AttributedGraph> ScpmServer::graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_;
}

std::uint64_t ScpmServer::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

Status ScpmServer::Reload(std::shared_ptr<const AttributedGraph> graph,
                          ReloadPolicy policy) {
  if (graph == nullptr) {
    return Status::InvalidArgument("reload graph must not be null");
  }
  std::vector<std::shared_ptr<QuerySession>> to_cancel;
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Internal("server is shutting down");
    graph_ = std::move(graph);
    epoch = ++epoch_;
    ++reloads_;
    if (policy == ReloadPolicy::kCancelRunning) {
      // Sessions pinned to an older epoch — running a slice right now
      // or preempted in the queue. Never-run sessions stay: they bind
      // to the new graph at their first pickup. (Binds happen under
      // this mutex, so a session is either pinned old here or will pin
      // new.)
      for (const auto& [id, session] : sessions_) {
        if (!session->terminal() && session->bound() &&
            session->pinned_epoch() < epoch) {
          to_cancel.push_back(session);
        }
      }
    }
  }
  // Epoch-keyed caches: the memo purges eagerly (stale entries are
  // unreachable the moment the epoch bumped); null models for old
  // epochs drop from the server cache (in-flight sessions hold their
  // own shared_ptr).
  if (memo_ != nullptr) memo_->BeginEpoch(epoch);
  {
    std::lock_guard<std::mutex> lock(null_models_mutex_);
    for (auto it = null_models_.begin(); it != null_models_.end();) {
      it = std::get<0>(it->first) != epoch ? null_models_.erase(it)
                                           : std::next(it);
    }
  }
  for (const std::shared_ptr<QuerySession>& session : to_cancel) {
    session->Cancel();
  }
  return Status::OK();
}

std::shared_ptr<ExpectationModel> ScpmServer::NullModelFor(
    const ScpmOptions& query_options, std::uint64_t epoch,
    const AttributedGraph& graph) {
  if (query_options.min_delta <= 0.0) return nullptr;
  const std::tuple<std::uint64_t, double, std::uint32_t> key(
      epoch, query_options.quasi_clique.gamma,
      query_options.quasi_clique.min_size);
  std::lock_guard<std::mutex> lock(null_models_mutex_);
  auto it = null_models_.find(key);
  if (it == null_models_.end()) {
    it = null_models_
             .emplace(key, std::make_shared<MaxExpectationModel>(
                               graph.graph(), query_options.quasi_clique))
             .first;
  }
  return it->second;
}

void ScpmServer::DriverLoop() {
  while (true) {
    QueueItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || draining_ || !queue_.empty();
      });
      // Draining: exit immediately, leaving the queue as-is — Drain()
      // persists the suspended sessions once the drivers are gone.
      // (Shutdown instead drains the queue: every item left is
      // cancelled and terminalizes on pickup.)
      if (draining_) return;
      if (queue_.empty()) return;  // stopping_, nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      if (item.fresh) --queued_fresh_;
      ++running_;
      // Pin the session's graph epoch under the same mutex that Reload
      // swaps under, closing the race between binding and the reload
      // cancel sweep.
      if (!item.session->bound()) item.session->Bind(graph_, epoch_);
    }
    const bool terminal = RunSlice(item.session);
    if (terminal) JournalTerminal(*item.session);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (!terminal) {
        // Round-robin: a preempted session goes to the back, behind
        // every waiting query.
        queue_.push_back(QueueItem{item.session, /*fresh=*/false});
        ++preemptions_;
      }
    }
    if (!terminal) queue_cv_.notify_one();
  }
}

bool ScpmServer::RunSlice(const std::shared_ptr<QuerySession>& session) {
  // The session pins graph + epoch + null model for its whole life, so
  // a concurrent reload never changes what this query computes.
  const std::shared_ptr<const AttributedGraph> graph = session->pinned_graph();
  const std::uint64_t epoch = session->pinned_epoch();
  if (session->needs_null_model()) {
    session->set_null_model(
        NullModelFor(session->spec().options, epoch, *graph));
  }
  if (options_.dist_workers > 0 && session->DistEligible()) {
    // Budgetless queries fork out into one fault-tolerant leased job
    // (docs/DIST.md) and come back terminal in a single pickup.
    dist::DistOptions dist_options;
    dist_options.workers = options_.dist_workers;
    dist::DistStats stats;
    const bool terminal = session->ExecuteDistributed(dist_options, &stats);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++dist_queries_;
      dist_lease_failures_ += stats.events.size();
      dist_stats_.batches += stats.batches;
      dist_stats_.heartbeat_timeouts += stats.heartbeat_timeouts;
      dist_stats_.worker_exits += stats.worker_exits;
      dist_stats_.corrupt_results += stats.corrupt_results;
      dist_stats_.worker_failures += stats.worker_failures;
      dist_stats_.retries += stats.retries;
      dist_stats_.backoff_ms_total += stats.backoff_ms_total;
      dist_stats_.inline_fallbacks += stats.inline_fallbacks;
      if (dist_stats_.workers.size() < stats.workers.size()) {
        dist_stats_.workers.resize(stats.workers.size());
      }
      for (std::size_t i = 0; i < stats.workers.size(); ++i) {
        dist_stats_.workers[i].batches += stats.workers[i].batches;
        dist_stats_.workers[i].reassignments += stats.workers[i].reassignments;
        dist_stats_.workers[i].retries += stats.workers[i].retries;
        dist_stats_.workers[i].backoff_ms += stats.workers[i].backoff_ms;
      }
    }
    return terminal;
  }
  if (memo_ == nullptr) {
    return session->ExecuteSlice(pool_.get(), &intra_budget_, nullptr,
                                 slice_policy_);
  }
  // Bind the cross-query memo to this query's (epoch, output-relevant
  // options): queries with different thresholds never share entries,
  // queries differing only in perf knobs do.
  MemoCache::BoundView memo = memo_->Bind(
      epoch,
      ScpmEngine::OptionsFingerprint(session->spec().options,
                                     session->spec().options.min_delta > 0.0));
  return session->ExecuteSlice(pool_.get(), &intra_budget_, &memo,
                               slice_policy_);
}

JsonValue ScpmServer::Stats() const {
  JsonValue out = JsonValue::MakeObject();
  std::uint64_t by_state[5] = {0, 0, 0, 0, 0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.Set("submitted", JsonValue(submitted_));
    out.Set("rejected", JsonValue(rejected_));
    out.Set("queued", JsonValue(std::uint64_t{queued_fresh_}));
    out.Set("preempted_queued",
            JsonValue(std::uint64_t{queue_.size() - queued_fresh_}));
    out.Set("preemptions", JsonValue(preemptions_));
    out.Set("running", JsonValue(std::uint64_t{running_}));
    out.Set("epoch", JsonValue(epoch_));
    out.Set("reloads", JsonValue(reloads_));
    out.Set("draining", JsonValue(draining_));
    out.Set("recovered_queries", JsonValue(recovered_queries_));
    JsonValue graph = JsonValue::MakeObject();
    graph.Set("vertices",
              JsonValue(static_cast<std::uint64_t>(graph_->NumVertices())));
    graph.Set("edges", JsonValue(graph_->graph().NumEdges()));
    graph.Set("attributes", JsonValue(graph_->NumAttributes()));
    out.Set("graph", std::move(graph));
    for (const auto& [id, session] : sessions_) {
      ++by_state[static_cast<int>(session->state())];
    }
  }
  JsonValue states = JsonValue::MakeObject();
  for (int s = 0; s < 5; ++s) {
    states.Set(QueryStateName(static_cast<QueryState>(s)),
               JsonValue(by_state[s]));
  }
  out.Set("sessions", std::move(states));
  out.Set("protocol_version", JsonValue(kProtocolVersion));
  out.Set("threads", JsonValue(std::uint64_t{pool_->num_threads()}));
  out.Set("max_concurrent", JsonValue(std::uint64_t{options_.max_concurrent}));
  out.Set("queue_depth", JsonValue(std::uint64_t{options_.queue_depth}));
  out.Set("slice_ms", JsonValue(options_.slice_ms));
  out.Set("slice_evals", JsonValue(options_.slice_evals));
  out.Set("default_deadline_ms", JsonValue(options_.default_deadline_ms));

  JsonValue memo = JsonValue::MakeObject();
  memo.Set("enabled", JsonValue(memo_ != nullptr));
  if (memo_ != nullptr) {
    const MemoCache::Stats stats = memo_->stats();
    memo.Set("hits", JsonValue(stats.hits));
    memo.Set("misses", JsonValue(stats.misses));
    const std::uint64_t lookups = stats.hits + stats.misses;
    memo.Set("hit_rate",
             JsonValue(lookups == 0
                           ? 0.0
                           : static_cast<double>(stats.hits) /
                                 static_cast<double>(lookups)));
    memo.Set("insertions", JsonValue(stats.insertions));
    memo.Set("evictions", JsonValue(stats.evictions));
    memo.Set("entries", JsonValue(stats.entries));
    memo.Set("bytes", JsonValue(stats.bytes));
    memo.Set("max_bytes", JsonValue(std::uint64_t{options_.memo.max_bytes}));
  }
  out.Set("memo", std::move(memo));

  JsonValue dist = JsonValue::MakeObject();
  dist.Set("enabled", JsonValue(options_.dist_workers > 0));
  if (options_.dist_workers > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    dist.Set("workers", JsonValue(std::uint64_t{options_.dist_workers}));
    dist.Set("queries", JsonValue(dist_queries_));
    dist.Set("batches", JsonValue(dist_stats_.batches));
    dist.Set("retries", JsonValue(dist_stats_.retries));
    dist.Set("heartbeat_timeouts", JsonValue(dist_stats_.heartbeat_timeouts));
    dist.Set("worker_exits", JsonValue(dist_stats_.worker_exits));
    dist.Set("corrupt_results", JsonValue(dist_stats_.corrupt_results));
    dist.Set("worker_failures", JsonValue(dist_stats_.worker_failures));
    dist.Set("inline_fallbacks", JsonValue(dist_stats_.inline_fallbacks));
    dist.Set("backoff_ms_total", JsonValue(dist_stats_.backoff_ms_total));
    dist.Set("lease_failures", JsonValue(dist_lease_failures_));
    JsonValue workers = JsonValue::MakeArray();
    for (const dist::DistWorkerStats& ws : dist_stats_.workers) {
      JsonValue w = JsonValue::MakeObject();
      w.Set("batches", JsonValue(ws.batches));
      w.Set("reassignments", JsonValue(ws.reassignments));
      w.Set("retries", JsonValue(ws.retries));
      w.Set("backoff_ms", JsonValue(ws.backoff_ms));
      workers.MutableArray()->push_back(std::move(w));
    }
    dist.Set("per_worker", std::move(workers));
  }
  out.Set("dist", std::move(dist));

  out.Set("uptime_ms",
          JsonValue(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started_at_)
                        .count()));
  JsonValue durability = JsonValue::MakeObject();
  durability.Set("enabled", JsonValue(store_ != nullptr));
  if (store_ != nullptr) {
    const JournalStats js = store_->stats();
    durability.Set("state_dir", JsonValue(options_.state_dir));
    durability.Set("checkpoint_interval_ms",
                   JsonValue(options_.checkpoint_interval_ms));
    durability.Set("journal_appends", JsonValue(js.appends));
    durability.Set("journal_fsyncs", JsonValue(js.fsyncs));
    durability.Set("checkpoint_writes", JsonValue(js.checkpoint_writes));
    durability.Set("io_errors", JsonValue(js.io_errors));
  }
  out.Set("durability", std::move(durability));
  return out;
}

JsonValue ScpmServer::ErrorResponse(const Status& status) const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(false));
  out.Set("error", JsonValue(status.ToString()));
  out.Set("code", JsonValue(StatusCodeToString(status.code())));
  return out;
}

JsonValue ScpmServer::HandleReload(const JsonValue& request) {
  const JsonValue* edges = request.Find("edges");
  const JsonValue* attrs = request.Find("attrs");
  const JsonValue* policy_value = request.Find("policy");
  if ((edges != nullptr && !edges->is_string()) ||
      (attrs != nullptr && !attrs->is_string())) {
    return ErrorResponse(
        Status::InvalidArgument("reload \"edges\"/\"attrs\" must be strings"));
  }
  if (policy_value != nullptr && !policy_value->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("reload \"policy\" must be a string"));
  }
  const std::string edges_path =
      edges != nullptr ? edges->AsString() : reload_edges_path_;
  const std::string attrs_path =
      attrs != nullptr ? attrs->AsString() : reload_attrs_path_;
  if (edges_path.empty() || attrs_path.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "reload requires \"edges\" and \"attrs\" (no server default paths)"));
  }
  ReloadPolicy policy = ReloadPolicy::kFinishOnOldGraph;
  if (policy_value != nullptr) {
    const std::string& name = policy_value->AsString();
    if (name == "cancel") {
      policy = ReloadPolicy::kCancelRunning;
    } else if (name != "finish") {
      return ErrorResponse(
          Status::InvalidArgument("unknown reload policy: " + name));
    }
  }
  // The load happens outside the server mutex — only the pointer swap
  // is a barrier; queries keep draining while the files parse.
  Result<AttributedGraph> loaded = LoadAttributedGraph(edges_path, attrs_path);
  if (!loaded.ok()) return ErrorResponse(loaded.status());
  auto graph =
      std::make_shared<const AttributedGraph>(std::move(loaded).value());
  const Status status = Reload(graph, policy);
  if (!status.ok()) return ErrorResponse(status);
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(true));
  out.Set("epoch", JsonValue(epoch()));
  out.Set("policy", JsonValue(policy == ReloadPolicy::kCancelRunning
                                  ? "cancel"
                                  : "finish"));
  JsonValue shape = JsonValue::MakeObject();
  shape.Set("vertices",
            JsonValue(static_cast<std::uint64_t>(graph->NumVertices())));
  shape.Set("edges", JsonValue(graph->graph().NumEdges()));
  shape.Set("attributes", JsonValue(graph->NumAttributes()));
  out.Set("graph", std::move(shape));
  return out;
}

std::string ScpmServer::HandleRequest(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status()).Dump();
  const JsonValue& request = *parsed;
  if (!request.is_object()) {
    return ErrorResponse(Status::InvalidArgument("request must be an object"))
        .Dump();
  }
  // Protocol versioning: absent "v" means version 1 (the pre-versioning
  // wire format is version 1); any other version is a typed reject so
  // future clients fail loudly instead of being half-understood.
  const JsonValue* version = request.Find("v");
  if (version != nullptr &&
      (!version->is_number() ||
       version->AsNumber() != static_cast<double>(kProtocolVersion))) {
    return ErrorResponse(Status::InvalidArgument(
                             "unsupported protocol version (server speaks v" +
                             std::to_string(kProtocolVersion) + ")"))
        .Dump();
  }
  const std::string op = request.StringOr("op", "");

  if (op == "submit") {
    const JsonValue* query = request.Find("query");
    Result<QuerySpec> spec =
        ParseQuerySpec(query != nullptr ? *query : JsonValue::MakeObject());
    if (!spec.ok()) return ErrorResponse(spec.status()).Dump();
    Result<std::shared_ptr<QuerySession>> session =
        Submit(std::move(spec).value());
    if (!session.ok()) return ErrorResponse(session.status()).Dump();
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("id", JsonValue((*session)->id()));
    if (request.BoolOr("wait", false)) {
      (*session)->WaitTerminal();
      out.Set("query", (*session)->Describe(graph().get()));
    } else {
      out.Set("state", JsonValue(QueryStateName((*session)->state())));
    }
    return out.Dump();
  }

  if (op == "status" || op == "cancel") {
    const JsonValue* id_value = request.Find("id");
    if (id_value == nullptr || !id_value->is_number()) {
      return ErrorResponse(
                 Status::InvalidArgument("op \"" + op + "\" requires \"id\""))
          .Dump();
    }
    const std::uint64_t id = static_cast<std::uint64_t>(id_value->AsNumber());
    std::shared_ptr<QuerySession> session = Find(id);
    if (session == nullptr) {
      return ErrorResponse(
                 Status::NotFound("no query with id " + std::to_string(id)))
          .Dump();
    }
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    if (op == "cancel") {
      // Through the server, not the session: cancel-while-queued must
      // also journal the terminal record.
      const QueryState observed = Cancel(id).value();
      out.Set("id", JsonValue(id));
      out.Set("was", JsonValue(QueryStateName(observed)));
      out.Set("state", JsonValue(QueryStateName(session->state())));
    } else {
      out.Set("query", session->Describe(graph().get()));
    }
    return out.Dump();
  }

  if (op == "reload") return HandleReload(request).Dump();

  if (op == "stats") {
    JsonValue out = Stats();
    out.Set("ok", JsonValue(true));
    return out.Dump();
  }

  if (op == "shutdown") {
    Shutdown();
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("state", JsonValue("stopped"));
    return out.Dump();
  }

  return ErrorResponse(Status::InvalidArgument(
                           op.empty() ? "request is missing \"op\""
                                      : "unknown op: " + op))
      .Dump();
}

Status ScpmServer::Serve(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IoError("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    const Status status =
        Status::IoError("listen " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int wake_pipe[2];
  if (::pipe(wake_pipe) < 0) {
    const Status status =
        Status::IoError(std::string("pipe: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  serve_wake_fd_.store(wake_pipe[1]);
  {
    // Shutdown() may already have run (e.g. before Serve was called):
    // don't block in poll for a wakeup that already happened.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      const char byte = 0;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
    }
  }

  // Live client fds, shared with the connection threads: a thread erases
  // (and closes) its own fd under the mutex when done; shutdown shuts
  // the remaining ones read-side so blocked recv()s return. SHUT_RD
  // (not RDWR) lets an in-flight response — the shutdown ack itself —
  // still reach the client.
  std::mutex clients_mutex;
  std::vector<int> clients;
  std::vector<std::thread> connections;
  while (true) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Shutdown() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(clients_mutex);
      clients.push_back(client);
    }
    connections.emplace_back([this, client, &clients_mutex, &clients] {
      std::string buffer;
      char chunk[4096];
      while (true) {
        const ssize_t n = ::recv(client, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, newline);
          buffer.erase(0, newline + 1);
          if (line.empty()) continue;
          if (!SendAll(client, HandleRequest(line) + "\n")) break;
        }
      }
      std::lock_guard<std::mutex> lock(clients_mutex);
      clients.erase(std::find(clients.begin(), clients.end(), client));
      ::close(client);
    });
  }
  {
    std::lock_guard<std::mutex> lock(clients_mutex);
    for (const int client : clients) ::shutdown(client, SHUT_RD);
  }
  for (std::thread& t : connections) t.join();
  serve_wake_fd_.store(-1);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);
  ::close(fd);
  ::unlink(path.c_str());
  return Status::OK();
}

}  // namespace scpm
