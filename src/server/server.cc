#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/engine.h"

namespace scpm {

namespace {

/// Writes the whole buffer, retrying partial writes; SIGPIPE suppressed
/// so a client hanging up mid-response just fails the send.
bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ScpmServer::ScpmServer(const AttributedGraph* graph, ServerOptions options)
    : graph_(graph),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          std::max<std::size_t>(1, options.threads))),
      // The per-run "2x threads" intra-search slot rule, applied once to
      // the shared pool: concurrent queries borrow decomposition slots
      // from one server-wide pot instead of oversubscribing per query.
      intra_budget_(2 * std::max<std::size_t>(1, options.threads)) {
  if (options_.memo.max_bytes > 0) {
    memo_ = std::make_unique<MemoCache>(options_.memo);
    memo_->BeginEpoch(epoch_);
  }
}

ScpmServer::~ScpmServer() { Shutdown(); }

void ScpmServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || stopping_) return;
  started_ = true;
  const std::size_t drivers = std::max<std::size_t>(1, options_.max_concurrent);
  drivers_.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

void ScpmServer::Shutdown() {
  std::vector<std::thread> drivers;
  std::vector<std::shared_ptr<QuerySession>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    drivers.swap(drivers_);
    for (const auto& [id, session] : sessions_) {
      if (!session->terminal()) to_cancel.push_back(session);
    }
  }
  queue_cv_.notify_all();
  // Cancel queued sessions (their driver pickup becomes a no-op) and cut
  // running ones at their next wave boundary.
  for (const std::shared_ptr<QuerySession>& session : to_cancel) {
    session->Cancel();
  }
  for (std::thread& t : drivers) t.join();
  // Wake a blocking Serve() accept loop, if one is running. A pipe write
  // is the only portably reliable wakeup — shutdown() on a listening
  // AF_UNIX socket does not interrupt accept() everywhere.
  const int wake = serve_wake_fd_.load();
  if (wake >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake, &byte, 1);
  }
}

Result<std::shared_ptr<QuerySession>> ScpmServer::Submit(QuerySpec spec) {
  std::shared_ptr<QuerySession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++rejected_;
      return Status::Internal("server is shutting down");
    }
    if (queue_.size() >= options_.queue_depth) {
      ++rejected_;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_depth) + " queued)");
    }
    session = std::make_shared<QuerySession>(next_id_++, std::move(spec));
    sessions_.emplace(session->id(), session);
    queue_.push_back(session);
    ++submitted_;
  }
  queue_cv_.notify_one();
  return session;
}

std::shared_ptr<QuerySession> ScpmServer::Find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<QueryState> ScpmServer::Cancel(std::uint64_t id) {
  std::shared_ptr<QuerySession> session = Find(id);
  if (session == nullptr) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return session->Cancel();
}

ExpectationModel* ScpmServer::NullModelFor(const ScpmOptions& query_options) {
  if (query_options.min_delta <= 0.0) return nullptr;
  const std::pair<double, std::uint32_t> key(
      query_options.quasi_clique.gamma, query_options.quasi_clique.min_size);
  std::lock_guard<std::mutex> lock(null_models_mutex_);
  auto it = null_models_.find(key);
  if (it == null_models_.end()) {
    it = null_models_
             .emplace(key, std::make_unique<MaxExpectationModel>(
                               graph_->graph(), query_options.quasi_clique))
             .first;
  }
  return it->second.get();
}

void ScpmServer::DriverLoop() {
  while (true) {
    std::shared_ptr<QuerySession> session;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to drain
      session = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    RunSession(session);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
  }
}

void ScpmServer::RunSession(const std::shared_ptr<QuerySession>& session) {
  ExpectationModel* null_model = NullModelFor(session->spec().options);
  if (memo_ == nullptr) {
    session->Execute(*graph_, null_model, pool_.get(), &intra_budget_,
                     nullptr);
    return;
  }
  // Bind the cross-query memo to this query's (epoch, output-relevant
  // options): queries with different thresholds never share entries,
  // queries differing only in perf knobs do.
  MemoCache::BoundView memo = memo_->Bind(
      epoch_, ScpmEngine::OptionsFingerprint(session->spec().options,
                                             null_model != nullptr));
  session->Execute(*graph_, null_model, pool_.get(), &intra_budget_, &memo);
}

JsonValue ScpmServer::Stats() const {
  JsonValue out = JsonValue::MakeObject();
  std::uint64_t by_state[5] = {0, 0, 0, 0, 0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.Set("submitted", JsonValue(submitted_));
    out.Set("rejected", JsonValue(rejected_));
    out.Set("queued", JsonValue(std::uint64_t{queue_.size()}));
    out.Set("running", JsonValue(std::uint64_t{running_}));
    for (const auto& [id, session] : sessions_) {
      ++by_state[static_cast<int>(session->state())];
    }
  }
  JsonValue states = JsonValue::MakeObject();
  for (int s = 0; s < 5; ++s) {
    states.Set(QueryStateName(static_cast<QueryState>(s)),
               JsonValue(by_state[s]));
  }
  out.Set("sessions", std::move(states));
  out.Set("threads", JsonValue(std::uint64_t{pool_->num_threads()}));
  out.Set("max_concurrent", JsonValue(std::uint64_t{options_.max_concurrent}));
  out.Set("queue_depth", JsonValue(std::uint64_t{options_.queue_depth}));
  out.Set("epoch", JsonValue(epoch_));

  JsonValue memo = JsonValue::MakeObject();
  memo.Set("enabled", JsonValue(memo_ != nullptr));
  if (memo_ != nullptr) {
    const MemoCache::Stats stats = memo_->stats();
    memo.Set("hits", JsonValue(stats.hits));
    memo.Set("misses", JsonValue(stats.misses));
    const std::uint64_t lookups = stats.hits + stats.misses;
    memo.Set("hit_rate", JsonValue(lookups == 0 ? 0.0
                                                : static_cast<double>(
                                                      stats.hits) /
                                                      static_cast<double>(
                                                          lookups)));
    memo.Set("insertions", JsonValue(stats.insertions));
    memo.Set("evictions", JsonValue(stats.evictions));
    memo.Set("entries", JsonValue(stats.entries));
    memo.Set("bytes", JsonValue(stats.bytes));
    memo.Set("max_bytes", JsonValue(std::uint64_t{options_.memo.max_bytes}));
  }
  out.Set("memo", std::move(memo));
  return out;
}

JsonValue ScpmServer::ErrorResponse(const Status& status) const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(false));
  out.Set("error", JsonValue(status.ToString()));
  out.Set("code", JsonValue(StatusCodeToString(status.code())));
  return out;
}

std::string ScpmServer::HandleRequest(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status()).Dump();
  const JsonValue& request = *parsed;
  if (!request.is_object()) {
    return ErrorResponse(Status::InvalidArgument("request must be an object"))
        .Dump();
  }
  const std::string op = request.StringOr("op", "");

  if (op == "submit") {
    const JsonValue* query = request.Find("query");
    Result<QuerySpec> spec = ParseQuerySpec(
        query != nullptr ? *query : JsonValue::MakeObject());
    if (!spec.ok()) return ErrorResponse(spec.status()).Dump();
    Result<std::shared_ptr<QuerySession>> session =
        Submit(std::move(spec).value());
    if (!session.ok()) return ErrorResponse(session.status()).Dump();
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("id", JsonValue((*session)->id()));
    if (request.BoolOr("wait", false)) {
      (*session)->WaitTerminal();
      out.Set("query", (*session)->Describe(graph_));
    } else {
      out.Set("state", JsonValue(QueryStateName((*session)->state())));
    }
    return out.Dump();
  }

  if (op == "status" || op == "cancel") {
    const JsonValue* id_value = request.Find("id");
    if (id_value == nullptr || !id_value->is_number()) {
      return ErrorResponse(
                 Status::InvalidArgument("op \"" + op + "\" requires \"id\""))
          .Dump();
    }
    const std::uint64_t id =
        static_cast<std::uint64_t>(id_value->AsNumber());
    std::shared_ptr<QuerySession> session = Find(id);
    if (session == nullptr) {
      return ErrorResponse(
                 Status::NotFound("no query with id " + std::to_string(id)))
          .Dump();
    }
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    if (op == "cancel") {
      const QueryState observed = session->Cancel();
      out.Set("id", JsonValue(id));
      out.Set("was", JsonValue(QueryStateName(observed)));
      out.Set("state", JsonValue(QueryStateName(session->state())));
    } else {
      out.Set("query", session->Describe(graph_));
    }
    return out.Dump();
  }

  if (op == "stats") {
    JsonValue out = Stats();
    out.Set("ok", JsonValue(true));
    return out.Dump();
  }

  if (op == "shutdown") {
    Shutdown();
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("state", JsonValue("stopped"));
    return out.Dump();
  }

  return ErrorResponse(Status::InvalidArgument(
                           op.empty() ? "request is missing \"op\""
                                      : "unknown op: " + op))
      .Dump();
}

Status ScpmServer::Serve(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    const Status status =
        Status::IoError("listen " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int wake_pipe[2];
  if (::pipe(wake_pipe) < 0) {
    const Status status =
        Status::IoError(std::string("pipe: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  serve_wake_fd_.store(wake_pipe[1]);
  {
    // Shutdown() may already have run (e.g. before Serve was called):
    // don't block in poll for a wakeup that already happened.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      const char byte = 0;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
    }
  }

  // Live client fds, shared with the connection threads: a thread erases
  // (and closes) its own fd under the mutex when done; shutdown shuts
  // the remaining ones read-side so blocked recv()s return. SHUT_RD
  // (not RDWR) lets an in-flight response — the shutdown ack itself —
  // still reach the client.
  std::mutex clients_mutex;
  std::vector<int> clients;
  std::vector<std::thread> connections;
  while (true) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Shutdown() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(clients_mutex);
      clients.push_back(client);
    }
    connections.emplace_back([this, client, &clients_mutex, &clients] {
      std::string buffer;
      char chunk[4096];
      while (true) {
        const ssize_t n = ::recv(client, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, newline);
          buffer.erase(0, newline + 1);
          if (line.empty()) continue;
          if (!SendAll(client, HandleRequest(line) + "\n")) break;
        }
      }
      std::lock_guard<std::mutex> lock(clients_mutex);
      clients.erase(std::find(clients.begin(), clients.end(), client));
      ::close(client);
    });
  }
  {
    std::lock_guard<std::mutex> lock(clients_mutex);
    for (const int client : clients) ::shutdown(client, SHUT_RD);
  }
  for (std::thread& t : connections) t.join();
  serve_wake_fd_.store(-1);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);
  ::close(fd);
  ::unlink(path.c_str());
  return Status::OK();
}

}  // namespace scpm
