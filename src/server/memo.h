// Cross-query evaluation memo for the SCPM query server.
//
// PR 1's engine shares Theorem-3 covered sets *within* one run through a
// mutex-striped cache whose entries die with their equivalence class.
// This cache is that idea given a lifetime beyond one Mine() call: it
// keeps complete attribute-set evaluations — the covered set K_S, the
// report decision with its stats and patterns, and the extendability
// verdict — across queries, keyed by (graph epoch, options fingerprint,
// attribute set). Because every stored value is a pure function of that
// key (see EvalMemo in core/engine.h), a hit replays the evaluation
// byte-identically; the hot query skips the induced-subgraph build and
// both quasi-clique searches.
//
//  * Striping: entries hash across mutex-guarded shards, so concurrent
//    queries touching unrelated attribute sets do not contend.
//  * Eviction: each shard keeps an exact LRU list under a byte budget
//    (the configured total split evenly across shards); inserting past
//    the budget evicts from the cold end. A single entry larger than a
//    shard's budget is not cached at all.
//  * Epochs: the server bumps the graph epoch on every (re)load. Old
//    epochs can never be looked up again (the epoch is part of the key);
//    BeginEpoch() additionally drops their entries eagerly so a reload
//    frees the memory at once instead of via LRU pressure.
//  * Counters: hits / misses / insertions / evictions / resident bytes,
//    all exact. The totals are deterministic for any interleaving of a
//    fixed multiset of operations; the *hit* split is deterministic
//    whenever queries run one at a time (two racing queries may both
//    miss the same fresh key — each publishes the identical value).

#ifndef SCPM_SERVER_MEMO_H_
#define SCPM_SERVER_MEMO_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "graph/types.h"

namespace scpm {

struct MemoCacheOptions {
  /// Total resident-value budget across all shards (0 disables caching:
  /// every lookup misses, every insert is dropped).
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Mutex stripes. More shards = less contention, coarser LRU (each
  /// shard evicts independently within max_bytes / num_shards).
  std::size_t num_shards = 16;
};

class MemoCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };

  explicit MemoCache(MemoCacheOptions options);
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  std::shared_ptr<const EvalMemo::Evaluation> Lookup(
      std::uint64_t epoch, std::uint64_t fingerprint,
      const AttributeSet& items);

  /// Inserts (or refreshes) an entry, evicting LRU entries of its shard
  /// as needed. An existing entry for the key is replaced (values for a
  /// key are identical by construction, so this only refreshes recency).
  void Insert(std::uint64_t epoch, std::uint64_t fingerprint,
              const AttributeSet& items,
              std::shared_ptr<const EvalMemo::Evaluation> eval);

  /// Eagerly drops every entry whose epoch differs from `epoch`. Stale
  /// epochs are unreachable either way (the epoch is part of the key);
  /// this frees their memory at reload time. Counts as evictions.
  void BeginEpoch(std::uint64_t epoch);

  /// Exact point-in-time counters (the per-shard locks are taken in
  /// order, so bytes/entries are a consistent sum).
  Stats stats() const;

  /// Approximate resident value bytes of one evaluation (the unit the
  /// byte budget is accounted in). Exposed for sizing tests.
  static std::size_t EvaluationBytes(const EvalMemo::Evaluation& eval);

  /// EvalMemo adapter binding this cache to one (epoch, fingerprint):
  /// what a query run hands to ScpmEngine::set_eval_memo. Copyable view;
  /// the cache must outlive it.
  class BoundView : public EvalMemo {
   public:
    BoundView(MemoCache* cache, std::uint64_t epoch, std::uint64_t fingerprint)
        : cache_(cache), epoch_(epoch), fingerprint_(fingerprint) {}

    std::shared_ptr<const Evaluation> Lookup(
        const AttributeSet& items) override {
      return cache_->Lookup(epoch_, fingerprint_, items);
    }
    void Insert(const AttributeSet& items,
                std::shared_ptr<const Evaluation> eval) override {
      cache_->Insert(epoch_, fingerprint_, items, std::move(eval));
    }

   private:
    MemoCache* cache_;
    std::uint64_t epoch_;
    std::uint64_t fingerprint_;
  };

  BoundView Bind(std::uint64_t epoch, std::uint64_t fingerprint) {
    return BoundView(this, epoch, fingerprint);
  }

 private:
  struct Key {
    std::uint64_t epoch = 0;
    std::uint64_t fingerprint = 0;
    AttributeSet items;

    bool operator==(const Key& other) const {
      return epoch == other.epoch && fingerprint == other.fingerprint &&
             items == other.items;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const EvalMemo::Evaluation> eval;
    std::size_t bytes = 0;
  };
  /// One stripe: an exact LRU list (front = most recent) plus the index
  /// into it, both guarded by the shard mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::size_t bytes = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key);

  const MemoCacheOptions options_;
  const std::size_t shard_budget_;  // max_bytes / num_shards
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace scpm

#endif  // SCPM_SERVER_MEMO_H_
