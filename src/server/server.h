// Long-lived SCPM query server.
//
// ScpmServer loads an attributed graph once and multiplexes many
// concurrent mining queries over one shared work-stealing pool:
//
//   submit --> [bounded admission queue] --> driver threads --> engine
//                     |                         (max_concurrent)
//                     +-- full? typed kResourceExhausted reject
//
// Each admitted query is a QuerySession (server/session.h) with its own
// options, budget, sink, and CancelToken. Drivers run sessions through
// ScpmEngine with the server's shared ThreadPool (placement only — output
// stays byte-identical to a direct ScpmMiner::Mine) and a cross-query
// MemoCache view bound to (graph epoch, options fingerprint), so a
// repeated query replays memoized evaluations instead of re-searching.
// Null models are built lazily per (gamma, min_size) and shared across
// queries (they are internally synchronized).
//
// The wire protocol is newline-delimited JSON over a Unix domain socket
// (docs/SERVER.md): ops submit / status / cancel / stats / shutdown.
// HandleRequest() is the socket-free core of that protocol — tests and
// embedders call it directly.

#ifndef SCPM_SERVER_SERVER_H_
#define SCPM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/attributed_graph.h"
#include "nullmodel/expectation.h"
#include "server/json.h"
#include "server/memo.h"
#include "server/session.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace scpm {

struct ServerOptions {
  /// Worker threads of the shared pool (every query's evaluation and
  /// intra-search tasks run here).
  std::size_t threads = 4;
  /// Driver threads = queries mining at once. Admitted queries beyond
  /// this wait in the queue.
  std::size_t max_concurrent = 2;
  /// Waiting (admitted, not yet running) queries. A submit past this
  /// depth is rejected with StatusCode::kResourceExhausted.
  std::size_t queue_depth = 16;
  /// Cross-query evaluation memo; max_bytes 0 disables it entirely.
  MemoCacheOptions memo;
};

class ScpmServer {
 public:
  /// The graph is borrowed and must outlive the server.
  ScpmServer(const AttributedGraph* graph, ServerOptions options);
  ~ScpmServer();
  ScpmServer(const ScpmServer&) = delete;
  ScpmServer& operator=(const ScpmServer&) = delete;

  /// Launches the driver threads. Submit works before Start — sessions
  /// just wait in the queue — which is also how tests fill the admission
  /// queue deterministically.
  void Start();

  /// Stops admission, cancels every queued and running query, and joins
  /// the drivers. Idempotent; implied by the destructor.
  void Shutdown();

  /// Admission control: enqueues a session or rejects it. Rejection is
  /// typed — StatusCode::kResourceExhausted when the queue is at
  /// queue_depth, kInternal after Shutdown.
  Result<std::shared_ptr<QuerySession>> Submit(QuerySpec spec);

  /// Session registry lookup (sessions stay queryable after finishing).
  std::shared_ptr<QuerySession> Find(std::uint64_t id) const;

  /// Cancels a query; returns its state as observed by the cancel.
  Result<QueryState> Cancel(std::uint64_t id);

  /// Server-wide aggregates: admission counters, per-state session
  /// counts, memo hit/miss/size, pool shape, epoch.
  JsonValue Stats() const;

  /// Executes one protocol request (one JSON line, no trailing newline)
  /// and returns the response JSON (no trailing newline). Never throws;
  /// malformed input yields an {"ok":false,...} response.
  std::string HandleRequest(const std::string& line);

  /// Serves the newline-delimited JSON protocol on a Unix domain socket
  /// until a shutdown request (or Shutdown()) arrives. Blocking; one
  /// thread per accepted connection. An existing socket file at `path`
  /// is replaced.
  Status Serve(const std::string& path);

  const AttributedGraph* graph() const { return graph_; }
  std::uint64_t epoch() const { return epoch_; }
  const MemoCache* memo() const { return memo_.get(); }
  const ServerOptions& options() const { return options_; }

 private:
  void DriverLoop();
  void RunSession(const std::shared_ptr<QuerySession>& session);
  /// Lazily builds / returns the shared null model for a query's
  /// quasi-clique parameters (nullptr when min_delta == 0).
  ExpectationModel* NullModelFor(const ScpmOptions& query_options);
  JsonValue ErrorResponse(const Status& status) const;

  const AttributedGraph* graph_;
  const ServerOptions options_;
  std::uint64_t epoch_ = 1;

  std::unique_ptr<ThreadPool> pool_;
  /// Server-wide intra-search slot pool shared by all concurrent
  /// queries (the per-run 2x rule, applied once to the shared pool).
  ParallelismBudget intra_budget_;
  std::unique_ptr<MemoCache> memo_;  // nullptr when memo.max_bytes == 0

  mutable std::mutex mutex_;  // queue + registry + lifecycle
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<QuerySession>> queue_;
  std::map<std::uint64_t, std::shared_ptr<QuerySession>> sessions_;
  std::vector<std::thread> drivers_;
  bool started_ = false;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t running_ = 0;

  std::mutex null_models_mutex_;
  std::map<std::pair<double, std::uint32_t>,
           std::unique_ptr<MaxExpectationModel>>
      null_models_;

  /// Serve() lifecycle: write end of the self-pipe that Shutdown() uses
  /// to wake the poll/accept loop.
  std::atomic<int> serve_wake_fd_{-1};
};

}  // namespace scpm

#endif  // SCPM_SERVER_SERVER_H_
