// Long-lived SCPM query server.
//
// ScpmServer loads an attributed graph once and multiplexes many
// concurrent mining queries over one shared work-stealing pool:
//
//   submit --> [bounded admission queue] --> driver threads --> engine
//                     |                         (max_concurrent)
//                     +-- full? typed kResourceExhausted reject
//
// Each admitted query is a QuerySession (server/session.h) around one
// core MiningRequest. Drivers run sessions through ScpmEngine with the
// server's shared ThreadPool (placement only — output stays
// byte-identical to a direct ScpmMiner::Mine) and a cross-query
// MemoCache view bound to (graph epoch, options fingerprint).
//
// Preemptive scheduling: with a slice policy configured (slice_ms /
// slice_evals), drivers run each query as a chain of budgeted engine
// segments through the checkpoint/resume machinery — a session whose
// slice is cut goes to the BACK of the run queue (round-robin), so a
// cheap query admitted behind a multi-second one completes within a
// couple of slices instead of waiting it out. Slicing never changes
// what a query returns: rows, patterns, and summed work counters stay
// byte-identical to an unpreempted run (memo aside, which replays
// work across queries by design).
//
// Live reload: Reload() swaps the graph under the server mutex, bumps
// the epoch, eagerly purges the memo, and prunes stale null models.
// In-flight queries keep mining the graph they pinned at first
// schedule (shared_ptr) or are cancelled, by policy. New queries see
// the new graph immediately; the memo re-warms under the new epoch.
//
// The wire protocol is newline-delimited JSON over a Unix domain
// socket (docs/SERVER.md): ops submit / status / cancel / stats /
// reload / shutdown, optionally versioned with "v": 1 (the only
// version; anything else is a typed kInvalidArgument). HandleRequest()
// is the socket-free core of that protocol — tests and embedders call
// it directly.

#ifndef SCPM_SERVER_SERVER_H_
#define SCPM_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "dist/dist.h"
#include "graph/attributed_graph.h"
#include "nullmodel/expectation.h"
#include "server/json.h"
#include "server/journal.h"
#include "server/memo.h"
#include "server/session.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace scpm {

/// The one protocol version this server speaks. Requests may carry
/// "v": <n>; absent means 1, anything other than 1 is rejected with
/// kInvalidArgument, and stats reports protocol_version.
inline constexpr std::uint64_t kProtocolVersion = 1;

struct ServerOptions {
  /// Worker threads of the shared pool (every query's evaluation and
  /// intra-search tasks run here).
  std::size_t threads = 4;
  /// Driver threads = queries mining at once. Admitted queries beyond
  /// this wait in the queue.
  std::size_t max_concurrent = 2;
  /// Waiting fresh (never-run) queries. A submit past this depth is
  /// rejected with StatusCode::kResourceExhausted. Preempted sessions
  /// re-queueing do not count against admission.
  std::size_t queue_depth = 16;
  /// Cross-query evaluation memo; max_bytes 0 disables it entirely.
  MemoCacheOptions memo;
  /// Preemption slice policy: per-slice wall clock / evaluation budget
  /// granted to a session each time a driver picks it up. Both 0 =
  /// run-to-completion (no preemption).
  std::uint64_t slice_ms = 0;
  std::uint64_t slice_evals = 0;
  /// Wall-clock budget applied to queries that specify no deadline_ms
  /// of their own; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  /// Durable state directory (journal + per-query checkpoints). Empty =
  /// no durability; set it and call Recover() before Start() to arm
  /// auto-checkpointing and crash recovery.
  std::string state_dir;
  /// How often a running query's snapshot is persisted, both by the
  /// engine's between-wave observer and at slice boundaries. Used only
  /// with state_dir set.
  std::uint64_t checkpoint_interval_ms = 1000;
  /// Encoding for q<id>.ckpt snapshot files (recovery auto-detects, so
  /// changing this across restarts is safe). Used only with state_dir.
  CheckpointFormat ckpt_format = CheckpointFormat::kBinary;
  /// Distributed execution (docs/DIST.md): > 0 forks this many worker
  /// processes per eligible query and mines it as one fault-tolerant
  /// leased job instead of sliced segments. Eligible = an unlimited
  /// budget after the default deadline applied (so default_deadline_ms
  /// != 0 disables it for every query that doesn't opt out of
  /// deadlines) and no crash-recovered snapshot. Distributed queries
  /// bypass the shared pool, the memo, and per-query durability
  /// snapshots (a crash re-runs them whole).
  std::size_t dist_workers = 0;
};

/// What happens to queries pinned to the old graph at Reload().
enum class ReloadPolicy {
  kFinishOnOldGraph,  // they keep mining the graph they started on
  kCancelRunning,     // they are cancelled at their next wave boundary
};

class ScpmServer {
 public:
  /// The server shares ownership of the graph; Reload() swaps it.
  ScpmServer(std::shared_ptr<const AttributedGraph> graph,
             ServerOptions options);
  /// Deprecated borrowing constructor (the graph must outlive the
  /// server and every session); kept so existing call sites compile.
  ScpmServer(const AttributedGraph* graph, ServerOptions options);
  ~ScpmServer();
  ScpmServer(const ScpmServer&) = delete;
  ScpmServer& operator=(const ScpmServer&) = delete;

  /// Launches the driver threads. Submit works before Start — sessions
  /// just wait in the queue — which is also how tests fill the admission
  /// queue deterministically.
  void Start();

  /// Stops admission, cancels every queued and running query, and joins
  /// the drivers. Idempotent; implied by the destructor.
  void Shutdown();

  /// Crash recovery + durability arming. With options().state_dir set,
  /// opens the state store, replays the journal, and re-admits every
  /// interrupted query of the last epoch — resuming jsonl queries from
  /// their snapshot (output truncated to the durably counted lines, so
  /// the final file is byte-identical to an uninterrupted run), and
  /// re-running accumulate/topk queries from scratch (their sink state
  /// is in-memory only; the deterministic engine reproduces the same
  /// result). Stale state — foreign epoch, changed graph shape, torn
  /// checkpoint, malformed spec — is discarded with a typed warning
  /// (see recovery_warnings()), never an error. Adopts the journal's
  /// epoch when the graph still matches, else bumps past it. Call once,
  /// before Start(); a no-op without a state_dir.
  Status Recover();

  /// Clean drain for SIGTERM: stops admissions (typed kInternal
  /// reject), suspends running queries at their next wave boundary,
  /// joins the drivers, persists every non-terminal query's snapshot,
  /// and wakes a blocking Serve(). Unlike Shutdown(), nothing is
  /// cancelled — a later Recover() on the same state_dir resumes the
  /// suspended queries. Idempotent; Shutdown() after it is a no-op.
  void Drain();

  /// Human-readable notes from the last Recover() — stale or torn state
  /// that was discarded. Empty on a clean recovery.
  const std::vector<std::string>& recovery_warnings() const {
    return recovery_warnings_;
  }

  /// Queries Recover() re-admitted (also in Stats()).
  std::uint64_t recovered_queries() const;

  /// Admission control: enqueues a session or rejects it. Rejection is
  /// typed — StatusCode::kResourceExhausted when the fresh-query queue
  /// is at queue_depth, kInternal after Shutdown. The server default
  /// deadline is applied here when the spec carries none.
  Result<std::shared_ptr<QuerySession>> Submit(QuerySpec spec);

  /// Session registry lookup (sessions stay queryable after finishing).
  std::shared_ptr<QuerySession> Find(std::uint64_t id) const;

  /// Cancels a query; returns its state as observed by the cancel.
  Result<QueryState> Cancel(std::uint64_t id);

  /// Swaps the served graph under the server mutex, bumps the epoch,
  /// purges the memo (eager BeginEpoch) and stale null models, and
  /// applies `policy` to queries pinned to an older epoch. Queued
  /// sessions that never ran bind to the new graph.
  Status Reload(std::shared_ptr<const AttributedGraph> graph,
                ReloadPolicy policy);

  /// Default graph files for the wire "reload" op when the request
  /// names none (the CLI passes its argv paths). Set before Serve().
  void set_reload_paths(std::string edges_path, std::string attrs_path) {
    reload_edges_path_ = std::move(edges_path);
    reload_attrs_path_ = std::move(attrs_path);
  }

  /// Server-wide aggregates: admission counters, per-state session
  /// counts, memo hit/miss/size, pool shape, epoch, slice policy,
  /// protocol version.
  JsonValue Stats() const;

  /// Executes one protocol request (one JSON line, no trailing newline)
  /// and returns the response JSON (no trailing newline). Never throws;
  /// malformed input yields an {"ok":false,...} response.
  std::string HandleRequest(const std::string& line);

  /// Serves the newline-delimited JSON protocol on a Unix domain socket
  /// until a shutdown request (or Shutdown()) arrives. Blocking; one
  /// thread per accepted connection. An existing socket file at `path`
  /// is replaced.
  Status Serve(const std::string& path);

  /// Snapshot of the currently served graph (epoch-dependent).
  std::shared_ptr<const AttributedGraph> graph() const;
  std::uint64_t epoch() const;
  const MemoCache* memo() const { return memo_.get(); }
  const ServerOptions& options() const { return options_; }

 private:
  struct QueueItem {
    std::shared_ptr<QuerySession> session;
    bool fresh = true;  // counts against queue_depth; preempted don't
  };

  void DriverLoop();
  /// One driver pickup: bind pins if first time, run one slice, report
  /// whether the session must be re-enqueued.
  bool RunSlice(const std::shared_ptr<QuerySession>& session);
  /// Lazily builds / returns the shared null model for (epoch, quasi-
  /// clique params); nullptr when min_delta == 0.
  std::shared_ptr<ExpectationModel> NullModelFor(
      const ScpmOptions& query_options, std::uint64_t epoch,
      const AttributedGraph& graph);
  JsonValue ErrorResponse(const Status& status) const;
  JsonValue HandleReload(const JsonValue& request);

  /// Best-effort terminal bookkeeping for one finished query: journal
  /// record + checkpoint removal. No-op without a state store.
  void JournalTerminal(const QuerySession& session);

  const ServerOptions options_;
  const SlicePolicy slice_policy_;
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  std::unique_ptr<ThreadPool> pool_;
  /// Server-wide intra-search slot pool shared by all concurrent
  /// queries (the per-run 2x rule, applied once to the shared pool).
  ParallelismBudget intra_budget_;
  std::unique_ptr<MemoCache> memo_;  // nullptr when memo.max_bytes == 0

  std::string reload_edges_path_;  // set before Serve, then read-only
  std::string reload_attrs_path_;

  mutable std::mutex mutex_;  // graph/epoch + queue + registry + lifecycle
  std::condition_variable queue_cv_;
  std::shared_ptr<const AttributedGraph> graph_;
  std::uint64_t epoch_ = 1;
  std::uint64_t reloads_ = 0;
  std::deque<QueueItem> queue_;
  std::size_t queued_fresh_ = 0;
  std::uint64_t preemptions_ = 0;
  std::map<std::uint64_t, std::shared_ptr<QuerySession>> sessions_;
  std::vector<std::thread> drivers_;
  bool started_ = false;
  bool stopping_ = false;
  bool draining_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t running_ = 0;
  std::uint64_t recovered_queries_ = 0;
  /// Distributed-execution aggregates across every dist-routed query
  /// (scalar counters summed, per-worker stats element-wise; events are
  /// only counted here — each query's own events ride its session).
  dist::DistStats dist_stats_;
  std::uint64_t dist_queries_ = 0;
  std::uint64_t dist_lease_failures_ = 0;

  /// Durable state (journal + checkpoints); nullptr until Recover()
  /// opens it. The store synchronizes internally.
  std::unique_ptr<StateStore> store_;
  std::vector<std::string> recovery_warnings_;  // written by Recover() only

  std::mutex null_models_mutex_;
  std::map<std::tuple<std::uint64_t, double, std::uint32_t>,
           std::shared_ptr<MaxExpectationModel>>
      null_models_;

  /// Serve() lifecycle: write end of the self-pipe that Shutdown() uses
  /// to wake the poll/accept loop.
  std::atomic<int> serve_wake_fd_{-1};
};

}  // namespace scpm

#endif  // SCPM_SERVER_SERVER_H_
