// One admitted query of the SCPM query server.
//
// A QuerySession carries everything a single query owns: its parsed
// QuerySpec (options + budget + sink choice), its CancelToken, its state
// machine (queued -> running -> done | cancelled | failed), its timings
// (queue wait, wall time), and its outcome (the MiningRun and the
// sink-dependent result payload). The server owns admission and driver
// threads; the session owns running one engine and describing itself as
// response JSON.
//
// Determinism contract: Execute() configures a ScpmEngine exactly like
// ScpmMiner::Mine does — same options, same null-model rule — plus the
// server's shared pool (placement only) and memo view (replay only), so
// an accumulate query's rows and patterns are byte-identical to a direct
// Mine() call with the same options, memo hot or cold, any thread count.
//
// Thread safety: Cancel() and Describe() may race Execute() and each
// other; state, timings, and results are published under one mutex at
// the terminal transition.

#ifndef SCPM_SERVER_SESSION_H_
#define SCPM_SERVER_SESSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "server/json.h"
#include "util/cancel.h"
#include "util/result.h"

namespace scpm {

class ParallelismBudget;
class ThreadPool;

/// Session lifecycle. Terminal states: kDone, kCancelled, kFailed.
enum class QueryState { kQueued, kRunning, kDone, kCancelled, kFailed };

/// Wire name of a state ("queued", "running", ...).
const char* QueryStateName(QueryState state);

/// Everything a submit request chooses. Wire field names mirror the CLI
/// flags (docs/SERVER.md has the full table).
struct QuerySpec {
  enum class Sink { kAccumulate, kJsonl, kTopK };

  ScpmOptions options;
  EngineBudget budget;
  Sink sink = Sink::kAccumulate;
  /// Server-side JSONL destination (required when sink == kJsonl).
  std::string jsonl_path;
  /// Patterns kept by the top-k sink.
  std::size_t sink_k = 10;
  /// Attribute-set rows embedded in an accumulate response (the full
  /// result is always mined; this caps only the response payload).
  std::size_t max_rows = 10000;
};

/// Decodes the "query" object of a submit request. Unknown members are
/// an error (they are silent typos otherwise); absent members keep the
/// defaults above. simd / chunked are process-global toggles, not
/// per-query options, and are deliberately not accepted here.
Result<QuerySpec> ParseQuerySpec(const JsonValue& query);

class QuerySession {
 public:
  QuerySession(std::uint64_t id, QuerySpec spec);
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  std::uint64_t id() const { return id_; }
  const QuerySpec& spec() const { return spec_; }

  QueryState state() const;
  bool terminal() const;

  /// Runs the query to a terminal state on the calling (driver) thread.
  /// No-op when the session was cancelled while queued. `null_model`,
  /// `pool`, `intra_budget`, and `memo` are borrowed for the duration of
  /// the call; any of them may be nullptr.
  void Execute(const AttributedGraph& graph, ExpectationModel* null_model,
               ThreadPool* pool, ParallelismBudget* intra_budget,
               EvalMemo* memo);

  /// Requests cancellation: a queued session becomes kCancelled
  /// immediately; a running one has its token latched and reaches
  /// kCancelled at the engine's next wave boundary; a terminal one is
  /// untouched. Returns the state observed at the call.
  QueryState Cancel();

  /// Blocks until the session is terminal.
  void WaitTerminal() const;

  /// Response JSON for status/submit-wait replies: id, state, timings,
  /// memo + engine counters, and the sink-dependent result payload (in
  /// terminal states). `graph` supplies attribute names; may be nullptr.
  JsonValue Describe(const AttributedGraph* graph) const;

  // Terminal-state accessors for in-process callers (tests, smoke
  // drivers). Valid only once terminal() is true.
  const Status& error() const { return error_; }
  const MiningRun& run() const { return run_; }
  /// Accumulate sink only: the assembled result, counters included.
  const ScpmResult& result() const { return result_; }
  /// Top-k sink only.
  const std::vector<StructuralCorrelationPattern>& top_patterns() const {
    return top_patterns_;
  }
  double queue_wait_ms() const;
  double wall_ms() const;

 private:
  bool MarkRunning();
  void Finish(QueryState state, Result<MiningRun> outcome);

  const std::uint64_t id_;
  const QuerySpec spec_;
  CancelToken token_;

  mutable std::mutex mutex_;
  mutable std::condition_variable terminal_cv_;
  QueryState state_ = QueryState::kQueued;
  bool cancel_requested_ = false;
  std::chrono::steady_clock::time_point submitted_;
  double queue_wait_ms_ = 0.0;
  double wall_ms_ = 0.0;

  // Outcome, published under mutex_ at the terminal transition.
  Status error_;
  MiningRun run_;
  ScpmResult result_;                                    // accumulate
  std::vector<StructuralCorrelationPattern> top_patterns_;  // topk
  std::uint64_t topk_sets_seen_ = 0;                     // topk
  std::uint64_t jsonl_lines_ = 0;                        // jsonl
};

/// Engine counters as a JSON object (sorted keys; field names match
/// ScpmCountersJson / docs/SERVER.md).
JsonValue CountersToJson(const ScpmCounters& counters);

}  // namespace scpm

#endif  // SCPM_SERVER_SESSION_H_
