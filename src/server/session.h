// One admitted query of the SCPM query server.
//
// A QuerySession carries everything a single query owns: its parsed
// QuerySpec (a core MiningRequest plus response-shaping extras), its
// state machine (queued -> running -> done | cancelled | failed), its
// timings, its execution pins (graph shared_ptr, epoch, null model) and
// its outcome (the cumulative MiningRun and the sink-dependent result
// payload). The server owns admission and driver threads; the session
// owns running engine *segments* and describing itself as response
// JSON.
//
// Preemption model: the server drives a query as a chain of budgeted
// segments. Each ExecuteSlice() call runs ScpmEngine::Run/Resume with
// a per-slice budget derived from the slice policy and the remaining
// query budget, keeps the hot EngineCheckpoint in memory on a cut, and
// returns whether the session reached a terminal state; the server
// re-enqueues non-terminal sessions round-robin. The request's sinks
// live in the session across slices, so streaming output survives
// suspension with no duplicate or lost finalized sets.
//
// Determinism contract: because Resume() reproduces the exact uncut
// union and hot checkpoints skip the cold-resume set rebuilding, a
// query sliced into N segments reports rows, patterns, AND summed work
// counters byte-identical to a direct ScpmMiner::Mine with the same
// options — for any slice size and thread count (memo detached; a memo
// adds cross-segment replay that legitimately shrinks work counters).
//
// Thread safety: Cancel() and Describe() may race ExecuteSlice() and
// each other; state, pins, timings, and results are published under
// one mutex. The execution-progress fields (sinks, checkpoint,
// cumulative run) are owned by whichever driver thread holds the
// session between queue pop and re-enqueue — the server's queue mutex
// sequences that handoff.

#ifndef SCPM_SERVER_SESSION_H_
#define SCPM_SERVER_SESSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/request.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "server/json.h"
#include "util/cancel.h"
#include "util/result.h"

namespace scpm {

class ParallelismBudget;
class StateStore;
class ThreadPool;

namespace dist {
struct DistOptions;
struct DistStats;
}  // namespace dist

/// Session lifecycle. Terminal states: kDone, kCancelled, kFailed.
enum class QueryState { kQueued, kRunning, kDone, kCancelled, kFailed };

/// Wire name of a state ("queued", "running", ...).
const char* QueryStateName(QueryState state);

/// Everything a submit request chooses: the unified core MiningRequest
/// (options + budget + sink selection) plus wire-only response shaping.
/// Wire field names mirror the CLI flags (docs/SERVER.md has the full
/// table).
struct QuerySpec : MiningRequest {
  /// Attribute-set rows embedded in an accumulate response (the full
  /// result is always mined; this caps only the response payload).
  std::size_t max_rows = 10000;
};

/// Decodes the "query" object of a submit request into a QuerySpec — a
/// thin JSON -> MiningRequest binder. Unknown members are an error
/// (they are silent typos otherwise); absent members keep the defaults
/// above. simd / chunked are process-global toggles, not per-query
/// options, and are rejected here with a pointed message.
Result<QuerySpec> ParseQuerySpec(const JsonValue& query);

/// Inverse of ParseQuerySpec: the wire object that re-parses to `spec`.
/// Every member ParseQuerySpec knows is emitted explicitly (round-trip
/// does not depend on defaults staying put), except members whose
/// absence IS the value (max_set_size when unlimited) and sink extras
/// that don't apply. The server journals this for crash recovery.
JsonValue QuerySpecToJson(const QuerySpec& spec);

/// Per-slice budget the server grants each ExecuteSlice call. Both
/// zero means "run to the query's own budget" (no preemption).
struct SlicePolicy {
  std::uint64_t slice_ms = 0;     // wall-clock per slice; 0 = unbounded
  std::uint64_t slice_evals = 0;  // evaluations per slice; 0 = unbounded
};

class QuerySession {
 public:
  QuerySession(std::uint64_t id, QuerySpec spec);
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  std::uint64_t id() const { return id_; }
  const QuerySpec& spec() const { return spec_; }

  QueryState state() const;
  bool terminal() const;

  /// Applies the server's default wall-clock budget when the query did
  /// not choose one. Call before the session is queued.
  void ApplyDefaultDeadline(std::uint64_t deadline_ms);

  /// Arms durability: each slice registers the engine's periodic
  /// checkpoint observer, and the driver additionally persists at slice
  /// end when `interval_ms` has elapsed since the last snapshot (engine
  /// observers alone never fire when slices are shorter than the
  /// interval — each segment restarts the engine's clock). Persistence
  /// is best-effort: I/O failures are counted by the store and the
  /// query keeps running. Call before queueing; `store` must outlive
  /// the session.
  void EnableDurability(StateStore* store, std::uint64_t interval_ms);

  /// Seeds a crash-recovered session from its persisted snapshot so the
  /// first slice resumes instead of starting fresh. `jsonl_lines` is
  /// the durable line count already in the output file (the sink then
  /// appends, and reported totals stay file-cumulative). Call before
  /// queueing, only for jsonl-sink queries.
  void SeedRecovered(EngineCheckpoint checkpoint, std::uint64_t emitted,
                     std::uint64_t patterns_emitted, std::uint64_t jsonl_lines);

  /// Asks the running slice (if any) to cut at the next wave boundary
  /// WITHOUT cancelling the query: ExecuteSlice returns false with the
  /// checkpoint retained, exactly like a slice-budget preemption. The
  /// drain path uses this to suspend live queries quickly.
  void Suspend();

  /// Persists the latest snapshot + cumulative counters to `store`
  /// (best-effort, like every durability write). Driver-side state:
  /// call only when no slice is running — e.g. at drain, after the
  /// drivers joined. No-op without a checkpoint.
  void PersistSnapshot(StateStore* store);

  /// Pins the graph epoch this query executes against. Called once by
  /// the driver that first pops the session (under the server's mutex,
  /// so a concurrent reload either re-points the session before the
  /// bind or observes the bind and applies its cancel policy). The
  /// shared_ptr keeps the old graph alive across reloads until the
  /// query finishes on it.
  void Bind(std::shared_ptr<const AttributedGraph> graph, std::uint64_t epoch);
  bool bound() const;
  std::uint64_t pinned_epoch() const;
  std::shared_ptr<const AttributedGraph> pinned_graph() const;

  /// Driver-only: the null model for the pinned graph, attached once
  /// after Bind (built outside the server mutex; shared_ptr so a
  /// reload pruning the server's model cache never invalidates it).
  void set_null_model(std::shared_ptr<ExpectationModel> model) {
    null_model_ = std::move(model);
  }
  bool needs_null_model() const {
    return spec_.options.min_delta > 0 && null_model_ == nullptr;
  }

  /// Runs one budgeted engine segment on the calling (driver) thread
  /// against the pinned graph and returns true when the session is
  /// terminal (done / cancelled / failed) — false means "preempted,
  /// re-enqueue me". `pool`, `intra_budget`, and `memo` are borrowed
  /// for the duration of the call; any may be nullptr. Requires
  /// Bind() first.
  ///
  /// Progress guarantee: a wall-clock slice discards in-flight frontier
  /// entries whole (the byte-identity mechanism), so an entry slower
  /// than the slice would otherwise be retried identically forever.
  /// When a segment completes no entry, the next slice's budget is
  /// doubled (and doubled again, geometrically) until one does, then
  /// the policy budget is restored — every query makes forward
  /// progress at any slice size.
  bool ExecuteSlice(ThreadPool* pool, ParallelismBudget* intra_budget,
                    EvalMemo* memo, const SlicePolicy& policy);

  /// True when this session can run as one distributed job: an
  /// unlimited budget (a distributed job has no mid-job cut), no
  /// earlier segments, and no crash-recovered snapshot to respect.
  /// Driver-only, like the execution-progress fields it reads.
  bool DistEligible() const;

  /// Runs the whole query as one fault-tolerant distributed job
  /// (forked workers, leased batches — docs/DIST.md) instead of sliced
  /// segments. Always terminal on return; Cancel() aborts the job at
  /// the next coordinator step. Distributed queries bypass the shared
  /// pool and the memo, and take no per-query durability snapshots (a
  /// crash re-runs them whole). Requires Bind() and DistEligible().
  bool ExecuteDistributed(const dist::DistOptions& dist_options,
                          dist::DistStats* stats);

  /// Requests cancellation: a queued session becomes kCancelled
  /// immediately; a running one has its current slice's token latched
  /// (or, when between slices, is reaped at its next slice) and
  /// reaches kCancelled with the partial results harvested; a terminal
  /// one is untouched. Returns the state observed at the call.
  QueryState Cancel();

  /// Blocks until the session is terminal.
  void WaitTerminal() const;

  /// Response JSON for status/submit-wait replies: id, state, timings,
  /// slice count, memo + engine counters, and the sink-dependent
  /// result payload (in terminal states). `graph` supplies attribute
  /// names when the session never bound one; the pinned graph wins.
  JsonValue Describe(const AttributedGraph* graph) const;

  // Terminal-state accessors for in-process callers (tests, smoke
  // drivers). Valid only once terminal() is true.
  const Status& error() const { return error_; }
  const MiningRun& run() const { return run_; }
  /// Accumulate sink only: the assembled result, counters included.
  const ScpmResult& result() const { return result_; }
  /// Top-k sink only.
  const std::vector<StructuralCorrelationPattern>& top_patterns() const {
    return top_patterns_;
  }
  double queue_wait_ms() const;
  double wall_ms() const;
  /// Engine segments run so far.
  std::uint64_t slices() const;

 private:
  /// Remaining-budget slice bounds; false when the query budget is
  /// already spent (caller terminalizes as a budget-cut kDone).
  bool RemainingBudget(const SlicePolicy& policy, EngineBudget* out) const;
  bool QueryBudgetSpent() const;
  /// Publishes the terminal state: harvests the sinks (except on
  /// kFailed), moves the cumulative run into place, notifies waiters.
  void Terminalize(QueryState state, Status error);

  const std::uint64_t id_;
  QuerySpec spec_;  // deadline default applied before queueing

  mutable std::mutex mutex_;
  mutable std::condition_variable terminal_cv_;
  QueryState state_ = QueryState::kQueued;
  bool cancel_requested_ = false;
  /// The running slice's stack-local token (a CancelToken latches
  /// forever, so every slice gets a fresh one; Cancel() latches
  /// whichever is current).
  CancelToken* live_token_ = nullptr;
  std::uint64_t slices_ = 0;
  // Execution pins, written by Bind under mutex_.
  std::shared_ptr<const AttributedGraph> graph_;
  std::uint64_t epoch_ = 0;
  std::chrono::steady_clock::time_point submitted_;
  double queue_wait_ms_ = 0.0;
  double wall_ms_ = 0.0;

  // Driver-only execution progress: owned by the driver thread holding
  // the session; handoff between drivers is sequenced by the server's
  // queue mutex.
  std::shared_ptr<ExpectationModel> null_model_;
  std::unique_ptr<RequestSinks> sinks_;
  MiningRun cum_;  // cumulative across segments
  EngineCheckpoint checkpoint_;
  bool has_checkpoint_ = false;
  /// Zero-progress escalation: multiplies the slice policy's budgets
  /// after a segment that completed no frontier entry; reset to 1 the
  /// moment a segment makes progress.
  std::uint64_t stall_factor_ = 1;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_at_;
  // Durability (driver-only, like the fields above). jsonl_base_lines_
  // is the durable line count a recovered session's output file already
  // held; snapshots and reported totals add it so they stay
  // file-cumulative across crashes.
  StateStore* store_ = nullptr;
  std::uint64_t persist_interval_ms_ = 0;
  std::chrono::steady_clock::time_point last_persist_;
  std::uint64_t jsonl_base_lines_ = 0;

  // Outcome, published under mutex_ at the terminal transition.
  Status error_;
  MiningRun run_;
  ScpmResult result_;                                       // accumulate
  std::vector<StructuralCorrelationPattern> top_patterns_;  // topk
  std::uint64_t topk_sets_seen_ = 0;                        // topk
  std::uint64_t jsonl_lines_ = 0;                           // jsonl
};

/// Engine counters as a JSON object (sorted keys; field names match
/// ScpmCountersJson / docs/SERVER.md).
JsonValue CountersToJson(const ScpmCounters& counters);

}  // namespace scpm

#endif  // SCPM_SERVER_SESSION_H_
