#include "server/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace scpm {

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
/// Depth is capped so a hostile "[[[[..." line fails cleanly instead of
/// overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue value;
    SCPM_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SCPM_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue(true);
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue(false);
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue();
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(object));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      SCPM_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      SCPM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = JsonValue(std::move(object));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(array));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      SCPM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = JsonValue(std::move(array));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Error("bad \\u escape");
            }
            code = code * 16 +
                   (std::isdigit(static_cast<unsigned char>(h))
                        ? static_cast<unsigned>(h - '0')
                        : static_cast<unsigned>(
                              std::tolower(static_cast<unsigned char>(h)) -
                              'a' + 10));
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            // Non-ASCII escapes pass through verbatim (see file comment
            // in the header).
            out->append(text_.substr(pos_ - 2, 6));
          }
          pos_ += 4;
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || first == last) {
      return Error("bad number");
    }
    *out = JsonValue(value);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double d = value.AsNumber();
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
        // Integer-valued numbers print without a fraction: ids, counts,
        // and byte sizes stay grep-able on the wire.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      } else {
        *out += "null";  // JSON has no inf/nan
      }
      return;
    }
    case JsonValue::Type::kString:
      *out += JsonQuote(value.AsString());
      return;
    case JsonValue::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& element : value.AsArray()) {
        if (!first) *out += ',';
        first = false;
        DumpTo(element, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, element] : value.AsObject()) {
        if (!first) *out += ',';
        first = false;
        *out += JsonQuote(key);
        *out += ':';
        DumpTo(element, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace scpm
