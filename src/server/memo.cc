#include "server/memo.h"

#include <algorithm>
#include <utility>

namespace scpm {

namespace {

/// FNV-1a over a 64-bit word.
inline std::uint64_t MixWord(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

}  // namespace

std::size_t MemoCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = 1469598103934665603ull;
  h = MixWord(h, key.epoch);
  h = MixWord(h, key.fingerprint);
  for (AttributeId a : key.items) h = MixWord(h, a);
  return static_cast<std::size_t>(h);
}

MemoCache::MemoCache(MemoCacheOptions options)
    : options_(options),
      shard_budget_(options.num_shards == 0
                        ? options.max_bytes
                        : options.max_bytes / options.num_shards) {
  const std::size_t shards = std::max<std::size_t>(1, options_.num_shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MemoCache::Shard& MemoCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::size_t MemoCache::EvaluationBytes(const EvalMemo::Evaluation& eval) {
  std::size_t bytes = sizeof(EvalMemo::Evaluation);
  bytes += eval.covered.capacity() * sizeof(VertexId);
  bytes += eval.output.stats.attributes.capacity() * sizeof(AttributeId);
  for (const StructuralCorrelationPattern& p : eval.output.patterns) {
    bytes += sizeof(StructuralCorrelationPattern);
    bytes += p.vertices.capacity() * sizeof(VertexId);
    bytes += p.attributes.capacity() * sizeof(AttributeId);
  }
  return bytes;
}

std::shared_ptr<const EvalMemo::Evaluation> MemoCache::Lookup(
    std::uint64_t epoch, std::uint64_t fingerprint,
    const AttributeSet& items) {
  Key key{epoch, fingerprint, items};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Refresh recency: splice the entry to the hot end.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->eval;
}

void MemoCache::Insert(std::uint64_t epoch, std::uint64_t fingerprint,
                       const AttributeSet& items,
                       std::shared_ptr<const EvalMemo::Evaluation> eval) {
  if (eval == nullptr) return;
  const std::size_t bytes = EvaluationBytes(*eval);
  // Never cache what a shard could not hold: admitting it would evict
  // the whole stripe for one entry that is immediately evicted itself.
  if (bytes > shard_budget_) return;
  Key key{epoch, fingerprint, items};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same key, identical value by construction: refresh recency and
    // byte accounting only.
    shard.bytes -= it->second->bytes;
    it->second->eval = std::move(eval);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(eval), bytes});
  shard.index.emplace(std::move(key), shard.lru.begin());
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& cold = shard.lru.back();
    shard.bytes -= cold.bytes;
    shard.index.erase(cold.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void MemoCache::BeginEpoch(std::uint64_t epoch) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.epoch == epoch) {
        ++it;
        continue;
      }
      shard->bytes -= it->bytes;
      shard->index.erase(it->key);
      it = shard->lru.erase(it);
      ++shard->evictions;
    }
  }
}

MemoCache::Stats MemoCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace scpm
