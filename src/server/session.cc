#include "server/session.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "core/statistics.h"
#include "dist/dist.h"
#include "graph/attributed_graph.h"
#include "server/journal.h"
#include "util/fault.h"
#include "util/simd_ops.h"

namespace scpm {

namespace {

double MsSince(std::chrono::steady_clock::time_point since,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

JsonValue IdArray(const std::vector<AttributeId>& ids) {
  JsonValue out = JsonValue::MakeArray();
  for (AttributeId a : ids) {
    out.MutableArray()->push_back(JsonValue(std::uint64_t{a}));
  }
  return out;
}

JsonValue VertexArray(const VertexSet& vertices) {
  JsonValue out = JsonValue::MakeArray();
  for (VertexId v : vertices) {
    out.MutableArray()->push_back(JsonValue(static_cast<std::uint64_t>(v)));
  }
  return out;
}

JsonValue PatternToJson(const StructuralCorrelationPattern& pattern) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attributes", IdArray(pattern.attributes));
  out.Set("vertices", VertexArray(pattern.vertices));
  out.Set("min_degree_ratio", JsonValue(pattern.min_degree_ratio));
  out.Set("edge_density", JsonValue(pattern.edge_density));
  return out;
}

JsonValue StatsToJson(const AttributeSetStats& stats,
                      const AttributedGraph* graph) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attributes", IdArray(stats.attributes));
  if (graph != nullptr) {
    JsonValue names = JsonValue::MakeArray();
    for (AttributeId a : stats.attributes) {
      names.MutableArray()->push_back(JsonValue(graph->AttributeName(a)));
    }
    out.Set("names", std::move(names));
  }
  out.Set("support", JsonValue(std::uint64_t{stats.support}));
  out.Set("covered", JsonValue(std::uint64_t{stats.covered}));
  out.Set("epsilon", JsonValue(stats.epsilon));
  out.Set("expected_epsilon", JsonValue(stats.expected_epsilon));
  out.Set("delta", JsonValue(stats.delta));
  return out;
}

/// min of two limits where 0 means "unlimited".
std::uint64_t CombineLimit(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDone:
      return "done";
    case QueryState::kCancelled:
      return "cancelled";
    case QueryState::kFailed:
      return "failed";
  }
  return "unknown";
}

JsonValue CountersToJson(const ScpmCounters& counters) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attribute_sets_evaluated",
          JsonValue(counters.attribute_sets_evaluated));
  out.Set("attribute_sets_reported",
          JsonValue(counters.attribute_sets_reported));
  out.Set("attribute_sets_extended",
          JsonValue(counters.attribute_sets_extended));
  out.Set("coverage_candidates", JsonValue(counters.coverage_candidates));
  out.Set("evaluation_batches", JsonValue(counters.evaluation_batches));
  out.Set("intra_search_evaluations",
          JsonValue(counters.intra_search_evaluations));
  out.Set("intra_branch_tasks", JsonValue(counters.intra_branch_tasks));
  out.Set("bitmap_intersections", JsonValue(counters.bitmap_intersections));
  out.Set("galloping_intersections",
          JsonValue(counters.galloping_intersections));
  out.Set("chunked_intersections", JsonValue(counters.chunked_intersections));
  out.Set("dense_conversions", JsonValue(counters.dense_conversions));
  out.Set("chunked_conversions", JsonValue(counters.chunked_conversions));
  out.Set("simd_dispatch", JsonValue(SimdDispatchName()));
  return out;
}

Result<QuerySpec> ParseQuerySpec(const JsonValue& query) {
  if (!query.is_object()) {
    return Status::InvalidArgument("query must be a JSON object");
  }
  QuerySpec spec;
  // Table 1 / CLI defaults are NOT assumed here: an empty query object
  // mines with the library defaults of ScpmOptions, exactly like a
  // default-constructed ScpmMiner.
  for (const auto& [key, value] : query.AsObject()) {
    // Type discipline up front: a wrong-typed member must not silently
    // decay to 0 / "" / false and mine something else than intended.
    const bool string_key =
        key == "scope" || key == "order" || key == "sink" || key == "out";
    const bool bool_key = key == "collect_patterns" || key == "hybrid" ||
                          key == "simd" || key == "chunked";
    if (string_key && !value.is_string()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a string");
    }
    if (bool_key && !value.is_bool()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a boolean");
    }
    if (!string_key && !bool_key && !value.is_number()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a number");
    }
    const auto number = [&v = value]() { return v.AsNumber(); };
    if (key == "gamma") {
      spec.options.quasi_clique.gamma = number();
    } else if (key == "min_size") {
      spec.options.quasi_clique.min_size =
          static_cast<std::uint32_t>(number());
    } else if (key == "sigma_min") {
      spec.options.min_support = static_cast<std::size_t>(number());
    } else if (key == "eps_min") {
      spec.options.min_epsilon = number();
    } else if (key == "delta_min") {
      spec.options.min_delta = number();
    } else if (key == "top_k") {
      spec.options.top_k = static_cast<std::size_t>(number());
    } else if (key == "scope") {
      const std::string& scope = value.AsString();
      if (scope == "maximal") {
        spec.options.pattern_scope = PatternScope::kAllMaximal;
      } else if (scope == "topk") {
        spec.options.pattern_scope = PatternScope::kTopK;
      } else {
        return Status::InvalidArgument("unknown scope: " + scope);
      }
    } else if (key == "order") {
      const std::string& order = value.AsString();
      if (order == "bfs") {
        spec.options.search_order = SearchOrder::kBfs;
      } else if (order == "dfs") {
        spec.options.search_order = SearchOrder::kDfs;
      } else {
        return Status::InvalidArgument("unknown order: " + order);
      }
    } else if (key == "max_set_size") {
      spec.options.max_attribute_set_size = static_cast<std::size_t>(number());
    } else if (key == "min_report_size") {
      spec.options.min_report_size = static_cast<std::size_t>(number());
    } else if (key == "collect_patterns") {
      spec.options.collect_patterns = value.AsBool();
    } else if (key == "batch_grain") {
      spec.options.eval_batch_grain = static_cast<std::size_t>(number());
    } else if (key == "intra_min") {
      spec.options.intra_search_min_universe =
          static_cast<std::size_t>(number());
    } else if (key == "intra_depth") {
      spec.options.intra_search_spawn_depth =
          static_cast<std::uint32_t>(number());
    } else if (key == "hybrid") {
      spec.options.use_hybrid_sets = value.AsBool();
    } else if (key == "simd" || key == "chunked") {
      // MiningRequest can carry these, but they flip process-global
      // kernel dispatch — one query must not change how every other
      // concurrent query executes.
      return Status::InvalidArgument(
          "query member " + key +
          " is process-global; set it on the server command line");
    } else if (key == "deadline_ms") {
      spec.budget.deadline_ms = static_cast<std::uint64_t>(number());
    } else if (key == "max_evals") {
      spec.budget.max_evaluations = static_cast<std::uint64_t>(number());
    } else if (key == "max_patterns") {
      spec.budget.max_patterns = static_cast<std::uint64_t>(number());
    } else if (key == "sink") {
      const std::string& sink = value.AsString();
      if (sink == "accumulate") {
        spec.sink = QuerySpec::Sink::kAccumulate;
      } else if (sink == "jsonl") {
        spec.sink = QuerySpec::Sink::kJsonl;
      } else if (sink == "topk") {
        spec.sink = QuerySpec::Sink::kTopK;
      } else {
        return Status::InvalidArgument("unknown sink: " + sink);
      }
    } else if (key == "out") {
      spec.jsonl_path = value.AsString();
    } else if (key == "sink_k") {
      spec.sink_k = static_cast<std::size_t>(number());
    } else if (key == "max_rows") {
      spec.max_rows = static_cast<std::size_t>(number());
    } else {
      return Status::InvalidArgument("unknown query member: " + key);
    }
  }
  if (spec.sink == QuerySpec::Sink::kJsonl && spec.jsonl_path.empty()) {
    return Status::InvalidArgument("sink \"jsonl\" requires \"out\"");
  }
  SCPM_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

JsonValue QuerySpecToJson(const QuerySpec& spec) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("gamma", JsonValue(spec.options.quasi_clique.gamma));
  out.Set("min_size",
          JsonValue(std::uint64_t{spec.options.quasi_clique.min_size}));
  out.Set("sigma_min", JsonValue(std::uint64_t{spec.options.min_support}));
  out.Set("eps_min", JsonValue(spec.options.min_epsilon));
  out.Set("delta_min", JsonValue(spec.options.min_delta));
  out.Set("top_k", JsonValue(std::uint64_t{spec.options.top_k}));
  out.Set("scope",
          JsonValue(spec.options.pattern_scope == PatternScope::kTopK
                        ? "topk"
                        : "maximal"));
  out.Set("order", JsonValue(spec.options.search_order == SearchOrder::kDfs
                                 ? "dfs"
                                 : "bfs"));
  // "Unlimited" is spelled by absence: SIZE_MAX does not survive the
  // JSON double round-trip.
  if (spec.options.max_attribute_set_size !=
      std::numeric_limits<std::size_t>::max()) {
    out.Set("max_set_size",
            JsonValue(std::uint64_t{spec.options.max_attribute_set_size}));
  }
  out.Set("min_report_size",
          JsonValue(std::uint64_t{spec.options.min_report_size}));
  out.Set("collect_patterns", JsonValue(spec.options.collect_patterns));
  out.Set("batch_grain",
          JsonValue(std::uint64_t{spec.options.eval_batch_grain}));
  out.Set("intra_min",
          JsonValue(std::uint64_t{spec.options.intra_search_min_universe}));
  out.Set("intra_depth",
          JsonValue(std::uint64_t{spec.options.intra_search_spawn_depth}));
  out.Set("hybrid", JsonValue(spec.options.use_hybrid_sets));
  out.Set("deadline_ms", JsonValue(spec.budget.deadline_ms));
  out.Set("max_evals", JsonValue(spec.budget.max_evaluations));
  out.Set("max_patterns", JsonValue(spec.budget.max_patterns));
  switch (spec.sink) {
    case QuerySpec::Sink::kAccumulate:
      out.Set("sink", JsonValue("accumulate"));
      break;
    case QuerySpec::Sink::kJsonl:
      out.Set("sink", JsonValue("jsonl"));
      out.Set("out", JsonValue(spec.jsonl_path));
      break;
    case QuerySpec::Sink::kTopK:
      out.Set("sink", JsonValue("topk"));
      out.Set("sink_k", JsonValue(std::uint64_t{spec.sink_k}));
      break;
  }
  out.Set("max_rows", JsonValue(std::uint64_t{spec.max_rows}));
  return out;
}

QuerySession::QuerySession(std::uint64_t id, QuerySpec spec)
    : id_(id),
      spec_(std::move(spec)),
      submitted_(std::chrono::steady_clock::now()) {
  // cum_ is a sum of segments, none of which has run yet.
  cum_.exhausted = false;
}

QueryState QuerySession::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool QuerySession::terminal() const {
  const QueryState s = state();
  return s == QueryState::kDone || s == QueryState::kCancelled ||
         s == QueryState::kFailed;
}

void QuerySession::ApplyDefaultDeadline(std::uint64_t deadline_ms) {
  if (spec_.budget.deadline_ms == 0) spec_.budget.deadline_ms = deadline_ms;
}

void QuerySession::EnableDurability(StateStore* store,
                                    std::uint64_t interval_ms) {
  store_ = store;
  persist_interval_ms_ = interval_ms;
}

void QuerySession::SeedRecovered(EngineCheckpoint checkpoint,
                                 std::uint64_t emitted,
                                 std::uint64_t patterns_emitted,
                                 std::uint64_t jsonl_lines) {
  checkpoint_ = std::move(checkpoint);
  has_checkpoint_ = true;
  cum_.emitted = emitted;
  cum_.patterns_emitted = patterns_emitted;
  jsonl_base_lines_ = jsonl_lines;
  spec_.jsonl_append = true;
}

void QuerySession::Suspend() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Latch the slice token WITHOUT cancel_requested_: the engine cuts at
  // the next wave boundary, the checkpoint is kept, and the query stays
  // resumable — BudgetHit() treats an externally latched token as a cut.
  if (live_token_ != nullptr) live_token_->RequestCancel();
}

void QuerySession::PersistSnapshot(StateStore* store) {
  if (store == nullptr || !has_checkpoint_) return;
  const std::uint64_t lines =
      jsonl_base_lines_ + (sinks_ != nullptr ? sinks_->jsonl_lines() : 0);
  (void)store->WriteCheckpoint(id_, checkpoint_, cum_.emitted,
                               cum_.patterns_emitted, lines);
  (void)store->AppendProgress(id_, cum_.emitted, lines);
}

void QuerySession::Bind(std::shared_ptr<const AttributedGraph> graph,
                        std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  graph_ = std::move(graph);
  epoch_ = epoch;
}

bool QuerySession::bound() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_ != nullptr;
}

std::uint64_t QuerySession::pinned_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::shared_ptr<const AttributedGraph> QuerySession::pinned_graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_;
}

bool QuerySession::QueryBudgetSpent() const {
  if (spec_.budget.max_evaluations != 0 &&
      cum_.counters.attribute_sets_evaluated >= spec_.budget.max_evaluations) {
    return true;
  }
  if (spec_.budget.max_patterns != 0 &&
      cum_.patterns_emitted >= spec_.budget.max_patterns) {
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_) {
    return true;
  }
  return false;
}

bool QuerySession::RemainingBudget(const SlicePolicy& policy,
                                   EngineBudget* out) const {
  EngineBudget b;  // all unlimited
  if (spec_.budget.max_evaluations != 0) {
    const std::uint64_t done = cum_.counters.attribute_sets_evaluated;
    if (done >= spec_.budget.max_evaluations) return false;
    b.max_evaluations = spec_.budget.max_evaluations - done;
  }
  b.max_evaluations = CombineLimit(b.max_evaluations, policy.slice_evals);
  if (spec_.budget.max_patterns != 0) {
    if (cum_.patterns_emitted >= spec_.budget.max_patterns) return false;
    b.max_patterns = spec_.budget.max_patterns - cum_.patterns_emitted;
  }
  std::uint64_t remaining_ms = 0;
  if (has_deadline_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_at_) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline_at_ - now)
                          .count();
    // A sub-millisecond remainder must not truncate to 0 (= unlimited).
    remaining_ms = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::max<long long>(0, left)));
  }
  b.deadline_ms = CombineLimit(remaining_ms, policy.slice_ms);
  *out = b;
  return true;
}

void QuerySession::Terminalize(QueryState state, Status error) {
  // Harvest outside the lock: sinks are driver-owned and this is the
  // last driver touch.
  MiningResponse harvested;
  bool have_payload = false;
  if (state != QueryState::kFailed && sinks_ != nullptr) {
    harvested.run = cum_;
    sinks_->Harvest(spec_, &harvested);
    if (harvested.result.attribute_sets.size() > spec_.max_rows) {
      harvested.result.attribute_sets.resize(spec_.max_rows);
    }
    have_payload = true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = state;
    wall_ms_ = MsSince(submitted_, std::chrono::steady_clock::now()) -
               queue_wait_ms_;
    run_ = std::move(cum_);
    if (have_payload) {
      result_ = std::move(harvested.result);
      top_patterns_ = std::move(harvested.top_patterns);
      topk_sets_seen_ = harvested.top_sets_seen;
      // File-cumulative for recovered queries: the lines the output
      // file held before the crash plus what this incarnation appended.
      jsonl_lines_ = harvested.jsonl_lines + jsonl_base_lines_;
    }
    if (!error.ok()) {
      error_ = std::move(error);
    } else if (state == QueryState::kCancelled) {
      error_ = Status::Cancelled("query cancelled");
    }
  }
  terminal_cv_.notify_all();
}

bool QuerySession::ExecuteSlice(ThreadPool* pool,
                                ParallelismBudget* intra_budget, EvalMemo* memo,
                                const SlicePolicy& policy) {
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != QueryState::kQueued && state_ != QueryState::kRunning) {
      return true;  // already terminal (cancelled while queued)
    }
    if (state_ == QueryState::kQueued) {
      state_ = QueryState::kRunning;
      queue_wait_ms_ = MsSince(submitted_, std::chrono::steady_clock::now());
    }
    cancelled = cancel_requested_;
  }
  if (cancelled) {
    // Cancelled between slices: harvest whatever earlier segments
    // streamed and stop without running another segment.
    Terminalize(QueryState::kCancelled, Status());
    return true;
  }

  if (sinks_ == nullptr) {  // first slice
    Result<std::unique_ptr<RequestSinks>> created =
        RequestSinks::Create(spec_, graph_.get());
    if (!created.ok()) {
      Terminalize(QueryState::kFailed, created.status());
      return true;
    }
    sinks_ = std::move(created).value();
    last_persist_ = std::chrono::steady_clock::now();
    if (spec_.budget.deadline_ms != 0) {
      // The query deadline is absolute from the first slice: time a
      // preempted query spends re-queued counts against it.
      has_deadline_ = true;
      deadline_at_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(spec_.budget.deadline_ms);
    }
  }

  // A stalled session (previous segment completed no frontier entry —
  // its one in-flight entry needs longer than the slice) gets a
  // geometrically escalated slice; otherwise an entry slower than the
  // slice is discarded and retried identically forever.
  SlicePolicy effective = policy;
  if (stall_factor_ > 1) {
    if (effective.slice_ms != 0) effective.slice_ms *= stall_factor_;
    if (effective.slice_evals != 0) effective.slice_evals *= stall_factor_;
  }

  EngineBudget slice_budget;
  if (!RemainingBudget(effective, &slice_budget)) {
    // The query's own budget is spent: a budget cut, exactly like a
    // direct Mine that ran out — done, not exhausted.
    if (has_checkpoint_) cum_.checkpoint = checkpoint_;
    Terminalize(QueryState::kDone, Status());
    return true;
  }

  ScpmEngine engine(spec_.options, null_model_.get());
  engine.set_budget(slice_budget);
  engine.set_shared_pool(pool, intra_budget);
  engine.set_eval_memo(memo);
  engine.set_hot_checkpoints(true);
  if (store_ != nullptr && persist_interval_ms_ != 0) {
    // Periodic durability: the engine hands out cold snapshots between
    // waves on this (driver) thread, so cum_/sinks_ access is safe.
    // Counters are cumulative across segments and crashes; write
    // failures are counted by the store and never fail the query.
    engine.set_checkpoint_observer(
        persist_interval_ms_,
        [this](const EngineCheckpoint& cp, const EngineProgress& p) {
          const std::uint64_t lines =
              jsonl_base_lines_ + sinks_->jsonl_lines();
          (void)store_->WriteCheckpoint(id_, cp, cum_.emitted + p.emitted,
                                        cum_.patterns_emitted +
                                            p.patterns_emitted,
                                        lines);
          (void)store_->AppendProgress(id_, cum_.emitted + p.emitted, lines);
          last_persist_ = std::chrono::steady_clock::now();
        });
  }
  // A CancelToken latches forever (a slice deadline would otherwise
  // poison every later segment), so each slice runs on a fresh
  // stack-local token registered for external Cancel().
  CancelToken slice_token;
  engine.set_cancel_token(&slice_token);
  if (FaultInjector::Instance().ShouldFail(fault::kSliceCancel)) {
    // Simulated mid-slice preemption: the segment cuts at its first
    // wave boundary and the query is re-enqueued, never cancelled.
    slice_token.RequestCancel();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancel_requested_) {
      cancelled = true;
    } else {
      live_token_ = &slice_token;
    }
  }
  if (cancelled) {
    Terminalize(QueryState::kCancelled, Status());
    return true;
  }

  const bool resumed = has_checkpoint_;
  const std::uint64_t prev_frontier = cum_.frontier_entries;
  Result<MiningRun> segment =
      resumed ? engine.Resume(*graph_, checkpoint_, sinks_->sink())
              : engine.Run(*graph_, sinks_->sink());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_token_ = nullptr;
    cancelled = cancel_requested_;
    ++slices_;
  }

  if (!segment.ok()) {
    const bool as_cancel =
        cancelled || segment.status().code() == StatusCode::kCancelled;
    Terminalize(as_cancel ? QueryState::kCancelled : QueryState::kFailed,
                segment.status());
    return true;
  }

  // Every completed entry leaves a trace (evaluations, an evaluation
  // batch, an emission, or a frontier-size change); a first segment
  // always progresses (it at least forms the root classes).
  const bool progress =
      !resumed || segment->exhausted || segment->emitted > 0 ||
      segment->counters.attribute_sets_evaluated > 0 ||
      segment->counters.evaluation_batches > 0 ||
      segment->frontier_entries != prev_frontier;
  if (progress) {
    stall_factor_ = 1;
  } else if (stall_factor_ < (std::uint64_t{1} << 20)) {
    stall_factor_ *= 2;
  }

  cum_.counters.MergeFrom(segment->counters);
  cum_.emitted += segment->emitted;
  cum_.patterns_emitted += segment->patterns_emitted;
  cum_.memo_hits += segment->memo_hits;
  cum_.memo_misses += segment->memo_misses;
  cum_.exhausted = segment->exhausted;
  cum_.frontier_entries = segment->frontier_entries;
  if (segment->exhausted) {
    has_checkpoint_ = false;
  } else {
    checkpoint_ = std::move(segment->checkpoint);
    has_checkpoint_ = true;
  }

  // Slice-end durability: the engine's own observer never fires when
  // slices are shorter than the interval (each segment restarts its
  // clock), so the driver also persists here once the interval lapses.
  if (store_ != nullptr && persist_interval_ms_ != 0 && has_checkpoint_) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_persist_ >=
        std::chrono::milliseconds(persist_interval_ms_)) {
      PersistSnapshot(store_);
      last_persist_ = std::chrono::steady_clock::now();
    }
  }

  // Explicit cancellation beats every other verdict: a Cancel() racing
  // the last wave may see the segment finish "exhausted", but the
  // client asked for cancellation and gets it reported.
  if (cancelled) {
    Terminalize(QueryState::kCancelled, Status());
    return true;
  }
  if (cum_.exhausted) {
    Terminalize(QueryState::kDone, Status());
    return true;
  }
  if (QueryBudgetSpent()) {
    cum_.checkpoint = checkpoint_;
    Terminalize(QueryState::kDone, Status());
    return true;
  }
  return false;  // preempted by the slice policy: re-enqueue
}

bool QuerySession::DistEligible() const {
  return spec_.budget.unlimited() && slices_ == 0 && sinks_ == nullptr &&
         !has_checkpoint_ && jsonl_base_lines_ == 0;
}

bool QuerySession::ExecuteDistributed(const dist::DistOptions& dist_options,
                                      dist::DistStats* stats) {
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != QueryState::kQueued && state_ != QueryState::kRunning) {
      return true;  // already terminal (cancelled while queued)
    }
    if (state_ == QueryState::kQueued) {
      state_ = QueryState::kRunning;
      queue_wait_ms_ = MsSince(submitted_, std::chrono::steady_clock::now());
    }
    cancelled = cancel_requested_;
  }
  if (cancelled) {
    Terminalize(QueryState::kCancelled, Status());
    return true;
  }

  Result<std::unique_ptr<RequestSinks>> created =
      RequestSinks::Create(spec_, graph_.get());
  if (!created.ok()) {
    Terminalize(QueryState::kFailed, created.status());
    return true;
  }
  sinks_ = std::move(created).value();

  CancelToken job_token;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancel_requested_) {
      cancelled = true;
    } else {
      live_token_ = &job_token;
    }
  }
  if (cancelled) {
    Terminalize(QueryState::kCancelled, Status());
    return true;
  }

  Result<MiningRun> run =
      dist::MineToSink(*graph_, spec_.options, sinks_->sink(), dist_options,
                       null_model_.get(), stats, &job_token);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_token_ = nullptr;
    cancelled = cancel_requested_;
    ++slices_;
  }

  if (!run.ok()) {
    const bool as_cancel =
        cancelled || run.status().code() == StatusCode::kCancelled;
    Terminalize(as_cancel ? QueryState::kCancelled : QueryState::kFailed,
                as_cancel ? Status() : run.status());
    return true;
  }
  cum_ = std::move(run).value();
  Terminalize(cancelled ? QueryState::kCancelled : QueryState::kDone, Status());
  return true;
}

QueryState QuerySession::Cancel() {
  std::unique_lock<std::mutex> lock(mutex_);
  cancel_requested_ = true;
  if (live_token_ != nullptr) live_token_->RequestCancel();
  const QueryState observed = state_;
  if (state_ == QueryState::kQueued) {
    state_ = QueryState::kCancelled;
    error_ = Status::Cancelled("query cancelled while queued");
    wall_ms_ = 0.0;
    queue_wait_ms_ = MsSince(submitted_, std::chrono::steady_clock::now());
    lock.unlock();
    terminal_cv_.notify_all();
  }
  return observed;
}

void QuerySession::WaitTerminal() const {
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [this] {
    return state_ == QueryState::kDone || state_ == QueryState::kCancelled ||
           state_ == QueryState::kFailed;
  });
}

double QuerySession::queue_wait_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_ms_;
}

double QuerySession::wall_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_ms_;
}

std::uint64_t QuerySession::slices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slices_;
}

JsonValue QuerySession::Describe(const AttributedGraph* graph) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The pinned graph names attributes even after a reload swapped the
  // server's current graph.
  if (graph_ != nullptr) graph = graph_.get();
  JsonValue out = JsonValue::MakeObject();
  out.Set("id", JsonValue(id_));
  out.Set("state", JsonValue(QueryStateName(state_)));
  out.Set("queue_wait_ms", JsonValue(queue_wait_ms_));
  out.Set("wall_ms", JsonValue(wall_ms_));
  out.Set("slices", JsonValue(slices_));
  if (graph_ != nullptr) out.Set("epoch", JsonValue(epoch_));
  const bool terminal = state_ == QueryState::kDone ||
                        state_ == QueryState::kCancelled ||
                        state_ == QueryState::kFailed;
  if (!terminal) return out;

  if (!error_.ok()) out.Set("error", JsonValue(error_.ToString()));
  if (state_ == QueryState::kFailed) return out;

  out.Set("exhausted", JsonValue(run_.exhausted));
  out.Set("emitted", JsonValue(run_.emitted));
  out.Set("patterns_emitted", JsonValue(run_.patterns_emitted));
  out.Set("memo_hits", JsonValue(run_.memo_hits));
  out.Set("memo_misses", JsonValue(run_.memo_misses));
  out.Set("counters", CountersToJson(run_.counters));

  JsonValue result = JsonValue::MakeObject();
  if (spec_.sink == QuerySpec::Sink::kAccumulate) {
    JsonValue rows = JsonValue::MakeArray();
    for (const AttributeSetStats& stats : result_.attribute_sets) {
      rows.MutableArray()->push_back(StatsToJson(stats, graph));
    }
    JsonValue patterns = JsonValue::MakeArray();
    for (const StructuralCorrelationPattern& p : result_.patterns) {
      patterns.MutableArray()->push_back(PatternToJson(p));
    }
    result.Set("attribute_sets", std::move(rows));
    result.Set("patterns", std::move(patterns));
    result.Set("rows_returned",
               JsonValue(std::uint64_t{result_.attribute_sets.size()}));
  } else if (spec_.sink == QuerySpec::Sink::kJsonl) {
    result.Set("out", JsonValue(spec_.jsonl_path));
    result.Set("lines", JsonValue(jsonl_lines_));
  } else {
    JsonValue patterns = JsonValue::MakeArray();
    for (const StructuralCorrelationPattern& p : top_patterns_) {
      patterns.MutableArray()->push_back(PatternToJson(p));
    }
    result.Set("patterns", std::move(patterns));
    result.Set("sets_seen", JsonValue(topk_sets_seen_));
  }
  out.Set("result", std::move(result));
  return out;
}

}  // namespace scpm
