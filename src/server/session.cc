#include "server/session.h"

#include <chrono>
#include <utility>

#include "core/statistics.h"
#include "graph/attributed_graph.h"
#include "util/simd_ops.h"

namespace scpm {

namespace {

double MsSince(std::chrono::steady_clock::time_point since,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

JsonValue IdArray(const std::vector<AttributeId>& ids) {
  JsonValue out = JsonValue::MakeArray();
  for (AttributeId a : ids) {
    out.MutableArray()->push_back(JsonValue(std::uint64_t{a}));
  }
  return out;
}

JsonValue VertexArray(const VertexSet& vertices) {
  JsonValue out = JsonValue::MakeArray();
  for (VertexId v : vertices) {
    out.MutableArray()->push_back(
        JsonValue(static_cast<std::uint64_t>(v)));
  }
  return out;
}

JsonValue PatternToJson(const StructuralCorrelationPattern& pattern) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attributes", IdArray(pattern.attributes));
  out.Set("vertices", VertexArray(pattern.vertices));
  out.Set("min_degree_ratio", JsonValue(pattern.min_degree_ratio));
  out.Set("edge_density", JsonValue(pattern.edge_density));
  return out;
}

JsonValue StatsToJson(const AttributeSetStats& stats,
                      const AttributedGraph* graph) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attributes", IdArray(stats.attributes));
  if (graph != nullptr) {
    JsonValue names = JsonValue::MakeArray();
    for (AttributeId a : stats.attributes) {
      names.MutableArray()->push_back(JsonValue(graph->AttributeName(a)));
    }
    out.Set("names", std::move(names));
  }
  out.Set("support", JsonValue(std::uint64_t{stats.support}));
  out.Set("covered", JsonValue(std::uint64_t{stats.covered}));
  out.Set("epsilon", JsonValue(stats.epsilon));
  out.Set("expected_epsilon", JsonValue(stats.expected_epsilon));
  out.Set("delta", JsonValue(stats.delta));
  return out;
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDone:
      return "done";
    case QueryState::kCancelled:
      return "cancelled";
    case QueryState::kFailed:
      return "failed";
  }
  return "unknown";
}

JsonValue CountersToJson(const ScpmCounters& counters) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("attribute_sets_evaluated",
          JsonValue(counters.attribute_sets_evaluated));
  out.Set("attribute_sets_reported",
          JsonValue(counters.attribute_sets_reported));
  out.Set("attribute_sets_extended",
          JsonValue(counters.attribute_sets_extended));
  out.Set("coverage_candidates", JsonValue(counters.coverage_candidates));
  out.Set("evaluation_batches", JsonValue(counters.evaluation_batches));
  out.Set("intra_search_evaluations",
          JsonValue(counters.intra_search_evaluations));
  out.Set("intra_branch_tasks", JsonValue(counters.intra_branch_tasks));
  out.Set("bitmap_intersections", JsonValue(counters.bitmap_intersections));
  out.Set("galloping_intersections",
          JsonValue(counters.galloping_intersections));
  out.Set("chunked_intersections", JsonValue(counters.chunked_intersections));
  out.Set("dense_conversions", JsonValue(counters.dense_conversions));
  out.Set("chunked_conversions", JsonValue(counters.chunked_conversions));
  out.Set("simd_dispatch", JsonValue(SimdDispatchName()));
  return out;
}

Result<QuerySpec> ParseQuerySpec(const JsonValue& query) {
  if (!query.is_object()) {
    return Status::InvalidArgument("query must be a JSON object");
  }
  QuerySpec spec;
  // Table 1 / CLI defaults are NOT assumed here: an empty query object
  // mines with the library defaults of ScpmOptions, exactly like a
  // default-constructed ScpmMiner.
  for (const auto& [key, value] : query.AsObject()) {
    // Type discipline up front: a wrong-typed member must not silently
    // decay to 0 / "" / false and mine something else than intended.
    const bool string_key =
        key == "scope" || key == "order" || key == "sink" || key == "out";
    const bool bool_key = key == "collect_patterns" || key == "hybrid";
    if (string_key && !value.is_string()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a string");
    }
    if (bool_key && !value.is_bool()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a boolean");
    }
    if (!string_key && !bool_key && !value.is_number()) {
      return Status::InvalidArgument("query member " + key +
                                     " must be a number");
    }
    const auto number = [&v = value]() { return v.AsNumber(); };
    if (key == "gamma") {
      spec.options.quasi_clique.gamma = number();
    } else if (key == "min_size") {
      spec.options.quasi_clique.min_size =
          static_cast<std::uint32_t>(number());
    } else if (key == "sigma_min") {
      spec.options.min_support = static_cast<std::size_t>(number());
    } else if (key == "eps_min") {
      spec.options.min_epsilon = number();
    } else if (key == "delta_min") {
      spec.options.min_delta = number();
    } else if (key == "top_k") {
      spec.options.top_k = static_cast<std::size_t>(number());
    } else if (key == "scope") {
      const std::string& scope = value.AsString();
      if (scope == "maximal") {
        spec.options.pattern_scope = PatternScope::kAllMaximal;
      } else if (scope == "topk") {
        spec.options.pattern_scope = PatternScope::kTopK;
      } else {
        return Status::InvalidArgument("unknown scope: " + scope);
      }
    } else if (key == "order") {
      const std::string& order = value.AsString();
      if (order == "bfs") {
        spec.options.search_order = SearchOrder::kBfs;
      } else if (order == "dfs") {
        spec.options.search_order = SearchOrder::kDfs;
      } else {
        return Status::InvalidArgument("unknown order: " + order);
      }
    } else if (key == "max_set_size") {
      spec.options.max_attribute_set_size =
          static_cast<std::size_t>(number());
    } else if (key == "min_report_size") {
      spec.options.min_report_size = static_cast<std::size_t>(number());
    } else if (key == "collect_patterns") {
      spec.options.collect_patterns = value.AsBool();
    } else if (key == "batch_grain") {
      spec.options.eval_batch_grain = static_cast<std::size_t>(number());
    } else if (key == "intra_min") {
      spec.options.intra_search_min_universe =
          static_cast<std::size_t>(number());
    } else if (key == "intra_depth") {
      spec.options.intra_search_spawn_depth =
          static_cast<std::uint32_t>(number());
    } else if (key == "hybrid") {
      spec.options.use_hybrid_sets = value.AsBool();
    } else if (key == "deadline_ms") {
      spec.budget.deadline_ms = static_cast<std::uint64_t>(number());
    } else if (key == "max_evals") {
      spec.budget.max_evaluations = static_cast<std::uint64_t>(number());
    } else if (key == "max_patterns") {
      spec.budget.max_patterns = static_cast<std::uint64_t>(number());
    } else if (key == "sink") {
      const std::string& sink = value.AsString();
      if (sink == "accumulate") {
        spec.sink = QuerySpec::Sink::kAccumulate;
      } else if (sink == "jsonl") {
        spec.sink = QuerySpec::Sink::kJsonl;
      } else if (sink == "topk") {
        spec.sink = QuerySpec::Sink::kTopK;
      } else {
        return Status::InvalidArgument("unknown sink: " + sink);
      }
    } else if (key == "out") {
      spec.jsonl_path = value.AsString();
    } else if (key == "sink_k") {
      spec.sink_k = static_cast<std::size_t>(number());
    } else if (key == "max_rows") {
      spec.max_rows = static_cast<std::size_t>(number());
    } else {
      return Status::InvalidArgument("unknown query member: " + key);
    }
  }
  if (spec.sink == QuerySpec::Sink::kJsonl && spec.jsonl_path.empty()) {
    return Status::InvalidArgument("sink \"jsonl\" requires \"out\"");
  }
  SCPM_RETURN_IF_ERROR(spec.options.Validate());
  return spec;
}

QuerySession::QuerySession(std::uint64_t id, QuerySpec spec)
    : id_(id),
      spec_(std::move(spec)),
      submitted_(std::chrono::steady_clock::now()) {}

QueryState QuerySession::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool QuerySession::terminal() const {
  const QueryState s = state();
  return s == QueryState::kDone || s == QueryState::kCancelled ||
         s == QueryState::kFailed;
}

bool QuerySession::MarkRunning() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != QueryState::kQueued) return false;
  state_ = QueryState::kRunning;
  queue_wait_ms_ = MsSince(submitted_, std::chrono::steady_clock::now());
  return true;
}

void QuerySession::Finish(QueryState state, Result<MiningRun> outcome) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = state;
    wall_ms_ = MsSince(submitted_, std::chrono::steady_clock::now()) -
               queue_wait_ms_;
    if (outcome.ok()) {
      run_ = std::move(outcome).value();
      if (state == QueryState::kCancelled) {
        error_ = Status::Cancelled("query cancelled");
      }
    } else {
      error_ = outcome.status();
    }
  }
  terminal_cv_.notify_all();
}

void QuerySession::Execute(const AttributedGraph& graph,
                           ExpectationModel* null_model, ThreadPool* pool,
                           ParallelismBudget* intra_budget, EvalMemo* memo) {
  if (!MarkRunning()) return;  // cancelled while queued

  ScpmEngine engine(spec_.options, null_model);
  engine.set_budget(spec_.budget);
  engine.set_shared_pool(pool, intra_budget);
  engine.set_eval_memo(memo);
  engine.set_cancel_token(&token_);

  AccumulatingSink accumulate;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<TopKPatternSink> topk;
  PatternSink* sink = &accumulate;
  if (spec_.sink == QuerySpec::Sink::kJsonl) {
    Result<std::unique_ptr<JsonlSink>> opened =
        JsonlSink::Create(spec_.jsonl_path, &graph);
    if (!opened.ok()) {
      Finish(QueryState::kFailed, opened.status());
      return;
    }
    jsonl = std::move(opened).value();
    sink = jsonl.get();
  } else if (spec_.sink == QuerySpec::Sink::kTopK) {
    topk = std::make_unique<TopKPatternSink>(spec_.sink_k);
    sink = topk.get();
  }

  Result<MiningRun> run = engine.Run(graph, sink);

  // Explicit cancellation beats every other verdict: a Cancel() racing
  // the last wave may see the run finish "exhausted", and an engine that
  // observed the latched token surfaces a plain budget-style cut — both
  // report kCancelled here because the client asked for it.
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled = cancel_requested_;
  }
  if (run.ok()) {
    if (spec_.sink == QuerySpec::Sink::kAccumulate) {
      result_ = accumulate.TakeResult();
      result_.counters = run->counters;
      if (result_.attribute_sets.size() > spec_.max_rows) {
        result_.attribute_sets.resize(spec_.max_rows);
      }
    } else if (spec_.sink == QuerySpec::Sink::kJsonl) {
      jsonl_lines_ = jsonl->lines_written();
    } else {
      top_patterns_ = topk->best();
      topk_sets_seen_ = topk->sets_seen();
    }
    Finish(cancelled ? QueryState::kCancelled : QueryState::kDone,
           std::move(run));
    return;
  }
  Finish(run.status().code() == StatusCode::kCancelled || cancelled
             ? QueryState::kCancelled
             : QueryState::kFailed,
         std::move(run));
}

QueryState QuerySession::Cancel() {
  token_.RequestCancel();
  std::unique_lock<std::mutex> lock(mutex_);
  cancel_requested_ = true;
  const QueryState observed = state_;
  if (state_ == QueryState::kQueued) {
    state_ = QueryState::kCancelled;
    error_ = Status::Cancelled("query cancelled while queued");
    wall_ms_ = 0.0;
    queue_wait_ms_ = MsSince(submitted_, std::chrono::steady_clock::now());
    lock.unlock();
    terminal_cv_.notify_all();
  }
  return observed;
}

void QuerySession::WaitTerminal() const {
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [this] {
    return state_ == QueryState::kDone || state_ == QueryState::kCancelled ||
           state_ == QueryState::kFailed;
  });
}

double QuerySession::queue_wait_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_ms_;
}

double QuerySession::wall_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_ms_;
}

JsonValue QuerySession::Describe(const AttributedGraph* graph) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::MakeObject();
  out.Set("id", JsonValue(id_));
  out.Set("state", JsonValue(QueryStateName(state_)));
  out.Set("queue_wait_ms", JsonValue(queue_wait_ms_));
  out.Set("wall_ms", JsonValue(wall_ms_));
  const bool terminal = state_ == QueryState::kDone ||
                        state_ == QueryState::kCancelled ||
                        state_ == QueryState::kFailed;
  if (!terminal) return out;

  if (!error_.ok()) out.Set("error", JsonValue(error_.ToString()));
  if (state_ == QueryState::kFailed) return out;

  out.Set("exhausted", JsonValue(run_.exhausted));
  out.Set("emitted", JsonValue(run_.emitted));
  out.Set("patterns_emitted", JsonValue(run_.patterns_emitted));
  out.Set("memo_hits", JsonValue(run_.memo_hits));
  out.Set("memo_misses", JsonValue(run_.memo_misses));
  out.Set("counters", CountersToJson(run_.counters));

  JsonValue result = JsonValue::MakeObject();
  if (spec_.sink == QuerySpec::Sink::kAccumulate) {
    JsonValue rows = JsonValue::MakeArray();
    for (const AttributeSetStats& stats : result_.attribute_sets) {
      rows.MutableArray()->push_back(StatsToJson(stats, graph));
    }
    JsonValue patterns = JsonValue::MakeArray();
    for (const StructuralCorrelationPattern& p : result_.patterns) {
      patterns.MutableArray()->push_back(PatternToJson(p));
    }
    result.Set("attribute_sets", std::move(rows));
    result.Set("patterns", std::move(patterns));
    result.Set("rows_returned",
               JsonValue(std::uint64_t{result_.attribute_sets.size()}));
  } else if (spec_.sink == QuerySpec::Sink::kJsonl) {
    result.Set("out", JsonValue(spec_.jsonl_path));
    result.Set("lines", JsonValue(jsonl_lines_));
  } else {
    JsonValue patterns = JsonValue::MakeArray();
    for (const StructuralCorrelationPattern& p : top_patterns_) {
      patterns.MutableArray()->push_back(PatternToJson(p));
    }
    result.Set("patterns", std::move(patterns));
    result.Set("sets_seen", JsonValue(topk_sets_seen_));
  }
  out.Set("result", std::move(result));
  return out;
}

}  // namespace scpm
