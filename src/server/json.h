// Minimal JSON document model for the server's wire protocol.
//
// The query server speaks newline-delimited JSON (docs/SERVER.md); this
// is the small, dependency-free parser/printer behind it. It covers the
// whole of RFC 8259 except one deliberate simplification: \uXXXX escapes
// outside the ASCII range are passed through as their literal escape
// text rather than decoded to UTF-8 (attribute names and file paths on
// the wire are byte strings either way). Numbers are doubles — protocol
// counters stay below 2^53, the integer-exact range.
//
// Objects preserve no insertion order; Dump() emits keys sorted, so a
// serialized value is deterministic — tests and the docs-drift gate rely
// on that.

#ifndef SCPM_SERVER_JSON_H_
#define SCPM_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace scpm {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::uint64_t u)
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses exactly one JSON value; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }
  Array* MutableArray() { return &array_; }
  Object* MutableObject() { return &object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with defaults (protocol convenience).
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;

  /// Compact serialization (sorted keys, shortest round-trip numbers).
  std::string Dump() const;

  /// Convenience builders.
  static JsonValue MakeObject() { return JsonValue(Object{}); }
  static JsonValue MakeArray() { return JsonValue(Array{}); }
  void Set(const std::string& key, JsonValue value) {
    object_[key] = std::move(value);
  }

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes a string for embedding in a JSON document (quotes included in
/// the output).
std::string JsonQuote(std::string_view s);

}  // namespace scpm

#endif  // SCPM_SERVER_JSON_H_
