#include "server/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/fault.h"

namespace scpm {

namespace {

/// fsyncs the directory itself so a rename (or create) inside it is
/// durable. Best-effort: some filesystems reject directory fsync.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool WriteFully(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<StateStore>> StateStore::Open(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("state directory path is empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
  }
  const std::string journal = dir + "/journal.jsonl";
  const int fd = ::open(journal.c_str(),
                        O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + journal + ": " + std::strerror(errno));
  }
  return std::unique_ptr<StateStore>(new StateStore(dir, fd));
}

StateStore::StateStore(std::string dir, int journal_fd)
    : dir_(std::move(dir)), journal_fd_(journal_fd) {}

StateStore::~StateStore() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::string StateStore::CheckpointPath(std::uint64_t id) const {
  return dir_ + "/q" + std::to_string(id) + ".ckpt";
}

Status StateStore::AppendLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.appends;
  if (FaultInjector::Instance().ShouldFail(fault::kJournalWrite)) {
    ++stats_.io_errors;
    return Status::IoError("injected fault: journal append");
  }
  if (!WriteFully(journal_fd_, line + "\n")) {
    ++stats_.io_errors;
    return Status::IoError("journal append: " + std::string(strerror(errno)));
  }
  if (::fsync(journal_fd_) != 0) {
    ++stats_.io_errors;
    return Status::IoError("journal fsync: " + std::string(strerror(errno)));
  }
  ++stats_.fsyncs;
  return Status::OK();
}

Status StateStore::AppendServer(std::uint64_t epoch, std::uint64_t vertices,
                                std::uint64_t edges,
                                std::uint64_t attributes) {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("server"));
  record.Set("epoch", JsonValue(epoch));
  record.Set("vertices", JsonValue(vertices));
  record.Set("edges", JsonValue(edges));
  record.Set("attributes", JsonValue(attributes));
  return AppendLine(record.Dump());
}

Status StateStore::AppendAdmit(std::uint64_t id, std::uint64_t epoch,
                               const JsonValue& query) {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("admit"));
  record.Set("id", JsonValue(id));
  record.Set("epoch", JsonValue(epoch));
  record.Set("query", query);
  return AppendLine(record.Dump());
}

Status StateStore::AppendProgress(std::uint64_t id, std::uint64_t emitted,
                                  std::uint64_t jsonl_lines) {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("progress"));
  record.Set("id", JsonValue(id));
  record.Set("emitted", JsonValue(emitted));
  record.Set("jsonl_lines", JsonValue(jsonl_lines));
  return AppendLine(record.Dump());
}

Status StateStore::AppendTerminal(std::uint64_t id, const char* state) {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("terminal"));
  record.Set("id", JsonValue(id));
  record.Set("state", JsonValue(state));
  return AppendLine(record.Dump());
}

Status StateStore::WriteCheckpoint(std::uint64_t id, const EngineCheckpoint& cp,
                                   std::uint64_t emitted,
                                   std::uint64_t patterns_emitted,
                                   std::uint64_t jsonl_lines,
                                   const std::string& trailer) {
  const std::string path = CheckpointPath(id);
  const std::string tmp = path + ".tmp";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checkpoint_writes;
  }
  const auto fail = [&](const std::string& what) {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.io_errors;
    return Status::IoError(what);
  };
  if (FaultInjector::Instance().ShouldFail(fault::kCheckpointWrite)) {
    return fail("injected fault: checkpoint write");
  }
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return fail("open " + tmp + ": " + std::strerror(errno));
  }
  const std::string text = "scpm-query-meta 1 " + std::to_string(emitted) +
                           ' ' + std::to_string(patterns_emitted) + ' ' +
                           std::to_string(jsonl_lines) + '\n' +
                           cp.Serialize(ckpt_format_) + trailer;
  if (!WriteFully(fd, text)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return fail("write " + tmp + ": " + err);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return fail("fsync " + tmp + ": " + err);
  }
  ::close(fd);
  // The atomic step: a crash before this leaves the old snapshot, after
  // it the new one — never a torn file at the final path.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("rename " + tmp + ": " + std::strerror(errno));
  }
  SyncDir(dir_);
  return Status::OK();
}

void StateStore::RemoveCheckpoint(std::uint64_t id) {
  ::unlink(CheckpointPath(id).c_str());
  ::unlink((CheckpointPath(id) + ".tmp").c_str());
}

JournalStats StateStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

RecoveryScan StateStore::Scan() const {
  RecoveryScan scan;
  std::ifstream in(dir_ + "/journal.jsonl");
  if (!in.is_open()) return scan;  // fresh directory: nothing to recover

  struct Entry {
    RecoveredQuery query;
    bool terminal = false;
  };
  std::map<std::uint64_t, Entry> entries;
  std::vector<std::uint64_t> admit_order;

  std::string line;
  std::uint64_t line_no = 0;
  bool pending_bad_line = false;
  std::string bad_line_warning;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // A malformed line only counts as "torn tail" if nothing valid
    // follows it; flush the previous suspicion first.
    if (pending_bad_line) {
      scan.warnings.push_back(bad_line_warning);
      pending_bad_line = false;
    }
    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok() || !parsed->is_object()) {
      pending_bad_line = true;
      bad_line_warning = "journal line " + std::to_string(line_no) +
                         " unparseable; record skipped";
      continue;
    }
    const JsonValue& record = *parsed;
    const std::string type = record.StringOr("t", "");
    if (type == "server") {
      scan.epoch = static_cast<std::uint64_t>(record.NumberOr("epoch", 0));
      scan.vertices =
          static_cast<std::uint64_t>(record.NumberOr("vertices", 0));
      scan.edges = static_cast<std::uint64_t>(record.NumberOr("edges", 0));
      scan.attributes =
          static_cast<std::uint64_t>(record.NumberOr("attributes", 0));
    } else if (type == "admit") {
      const std::uint64_t id =
          static_cast<std::uint64_t>(record.NumberOr("id", 0));
      const JsonValue* query = record.Find("query");
      if (id == 0 || query == nullptr || !query->is_object()) {
        scan.warnings.push_back("journal line " + std::to_string(line_no) +
                                " has a malformed admit record; skipped");
        continue;
      }
      Entry entry;
      entry.query.id = id;
      entry.query.epoch =
          static_cast<std::uint64_t>(record.NumberOr("epoch", 0));
      entry.query.query = *query;
      if (entries.emplace(id, std::move(entry)).second) {
        admit_order.push_back(id);
      }
      if (id > scan.max_id) scan.max_id = id;
    } else if (type == "progress") {
      // Observability only: recovery counters come from the checkpoint
      // file's meta header, which is atomic with the snapshot itself.
      const std::uint64_t id =
          static_cast<std::uint64_t>(record.NumberOr("id", 0));
      if (entries.find(id) == entries.end()) {
        scan.warnings.push_back("journal line " + std::to_string(line_no) +
                                " reports progress for unknown query " +
                                std::to_string(id) + "; skipped");
      }
    } else if (type == "terminal") {
      const std::uint64_t id =
          static_cast<std::uint64_t>(record.NumberOr("id", 0));
      auto it = entries.find(id);
      if (it != entries.end()) it->second.terminal = true;
    } else {
      scan.warnings.push_back("journal line " + std::to_string(line_no) +
                              " has unknown record type \"" + type +
                              "\"; skipped");
    }
  }
  if (pending_bad_line) {
    // The classic crash signature: the process died mid-append. The
    // fsync discipline means at most this one record is lost.
    scan.warnings.push_back("journal ends in a torn record (line " +
                            std::to_string(line_no) +
                            "); dropped, earlier records intact");
  }

  for (std::uint64_t id : admit_order) {
    Entry& entry = entries.at(id);
    if (entry.terminal) continue;
    if (entry.query.epoch != scan.epoch) {
      scan.warnings.push_back(
          "query " + std::to_string(id) + " was admitted under epoch " +
          std::to_string(entry.query.epoch) + " but the journal epoch is " +
          std::to_string(scan.epoch) + "; discarded as stale");
      continue;
    }
    std::ifstream ckpt(CheckpointPath(id));
    if (ckpt.is_open()) {
      std::string magic;
      std::uint64_t version = 0;
      bool meta_ok = false;
      if (ckpt >> magic >> version && magic == "scpm-query-meta" &&
          version == 1 &&
          ckpt >> entry.query.emitted >> entry.query.patterns_emitted >>
              entry.query.jsonl_lines) {
        meta_ok = true;
      }
      Result<EngineCheckpoint> loaded =
          meta_ok ? EngineCheckpoint::Load(ckpt)
                  : Result<EngineCheckpoint>(Status::InvalidArgument(
                        "checkpoint meta header malformed"));
      if (loaded.ok()) {
        entry.query.checkpoint = std::move(loaded).value();
        entry.query.has_checkpoint = true;
        // Everything past the snapshot's "end" token is the writer's
        // trailer; hand it back byte-for-byte.
        std::ostringstream rest;
        rest << ckpt.rdbuf();
        entry.query.trailer = rest.str();
      } else {
        scan.warnings.push_back("query " + std::to_string(id) +
                                " checkpoint unreadable (" +
                                loaded.status().ToString() +
                                "); will re-run from scratch");
        entry.query.emitted = 0;
        entry.query.patterns_emitted = 0;
        entry.query.jsonl_lines = 0;
      }
    }
    // Admitted but never snapshotted (or snapshot unreadable): the
    // query re-runs whole from its journaled spec.
    scan.queries.push_back(std::move(entry.query));
  }
  return scan;
}

}  // namespace scpm
