#include "graph/subgraph.h"

#include <algorithm>

#include "util/sorted_ops.h"

namespace scpm {

Result<InducedSubgraph> InducedSubgraph::Create(const Graph& parent,
                                                VertexSet vertices) {
  if (!IsStrictlySorted(vertices)) {
    return Status::InvalidArgument(
        "induced vertex set must be sorted and duplicate-free");
  }
  if (!vertices.empty() && vertices.back() >= parent.NumVertices()) {
    return Status::InvalidArgument("induced vertex id out of range");
  }

  const VertexId n = static_cast<VertexId>(vertices.size());
  std::vector<Edge> edges;
  for (VertexId local = 0; local < n; ++local) {
    const VertexId global = vertices[local];
    // Merge-intersect the (sorted) parent adjacency with the (sorted)
    // induced vertex set, emitting each edge once (u < v locally).
    auto nbrs = parent.Neighbors(global);
    auto it = nbrs.begin();
    VertexId other_local = 0;
    while (it != nbrs.end() && other_local < n) {
      const VertexId w = vertices[other_local];
      if (*it < w) {
        ++it;
      } else if (w < *it) {
        ++other_local;
      } else {
        if (local < other_local) edges.push_back({local, other_local});
        ++it;
        ++other_local;
      }
    }
  }
  Result<Graph> graph = Graph::FromEdges(n, std::move(edges));
  if (!graph.ok()) return graph.status();
  return InducedSubgraph(std::move(graph).value(), std::move(vertices));
}

VertexId InducedSubgraph::ToLocal(VertexId global) const {
  auto it = std::lower_bound(global_ids_.begin(), global_ids_.end(), global);
  if (it == global_ids_.end() || *it != global) return kInvalidVertex;
  return static_cast<VertexId>(it - global_ids_.begin());
}

VertexSet InducedSubgraph::ToGlobal(const VertexSet& locals) const {
  VertexSet out;
  out.reserve(locals.size());
  for (VertexId local : locals) out.push_back(global_ids_[local]);
  // Locals sorted ascending map to sorted globals because global_ids_ is
  // itself sorted.
  return out;
}

}  // namespace scpm
