#include "graph/subgraph.h"

#include <algorithm>
#include <bit>

#include "util/sorted_ops.h"

namespace scpm {

Result<InducedSubgraph> InducedSubgraph::Create(const Graph& parent,
                                                VertexSet vertices) {
  if (!IsStrictlySorted(vertices)) {
    return Status::InvalidArgument(
        "induced vertex set must be sorted and duplicate-free");
  }
  if (!vertices.empty() && vertices.back() >= parent.NumVertices()) {
    return Status::InvalidArgument("induced vertex id out of range");
  }

  const VertexId n = static_cast<VertexId>(vertices.size());
  std::vector<Edge> edges;
  for (VertexId local = 0; local < n; ++local) {
    const VertexId global = vertices[local];
    // Merge-intersect the (sorted) parent adjacency with the (sorted)
    // induced vertex set, emitting each edge once (u < v locally).
    auto nbrs = parent.Neighbors(global);
    auto it = nbrs.begin();
    VertexId other_local = 0;
    while (it != nbrs.end() && other_local < n) {
      const VertexId w = vertices[other_local];
      if (*it < w) {
        ++it;
      } else if (w < *it) {
        ++other_local;
      } else {
        if (local < other_local) edges.push_back({local, other_local});
        ++it;
        ++other_local;
      }
    }
  }
  Result<Graph> graph = Graph::FromEdges(n, std::move(edges));
  if (!graph.ok()) return graph.status();
  return InducedSubgraph(std::move(graph).value(), std::move(vertices));
}

VertexId InducedSubgraph::ToLocal(VertexId global) const {
  auto it = std::lower_bound(global_ids_.begin(), global_ids_.end(), global);
  if (it == global_ids_.end() || *it != global) return kInvalidVertex;
  return static_cast<VertexId>(it - global_ids_.begin());
}

VertexSet InducedSubgraph::ToGlobal(const VertexSet& locals) const {
  VertexSet out;
  out.reserve(locals.size());
  for (VertexId local : locals) out.push_back(global_ids_[local]);
  // Locals sorted ascending map to sorted globals because global_ids_ is
  // itself sorted.
  return out;
}

Result<InducedSubgraph> SubgraphWorkspace::Build(const Graph& parent,
                                                 VertexSet vertices) {
  if (!IsStrictlySorted(vertices)) {
    return Status::InvalidArgument(
        "induced vertex set must be sorted and duplicate-free");
  }
  if (!vertices.empty() && vertices.back() >= parent.NumVertices()) {
    return Status::InvalidArgument("induced vertex id out of range");
  }

  if (stamp_.size() < parent.NumVertices()) {
    stamp_.resize(parent.NumVertices(), epoch_);
    local_of_.resize(parent.NumVertices());
  }
  if (++epoch_ == 0) {  // Wrapped: every stale stamp now collides.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  const VertexId n = static_cast<VertexId>(vertices.size());
  for (VertexId local = 0; local < n; ++local) {
    stamp_[vertices[local]] = epoch_;
    local_of_[vertices[local]] = local;
  }

  CsrBuffers csr;
  if (!free_.empty()) {
    csr = std::move(free_.back());
    free_.pop_back();
  }
  csr.offsets.clear();
  csr.adjacency.clear();
  csr.offsets.reserve(static_cast<std::size_t>(n) + 1);
  csr.offsets.push_back(0);
  // Vertices are processed in local order and parent adjacency is sorted,
  // so each local neighbor list comes out sorted (the mapping is
  // monotone) and the CSR fills front to back in one pass.
  for (VertexId local = 0; local < n; ++local) {
    for (VertexId w : parent.Neighbors(vertices[local])) {
      if (stamp_[w] == epoch_) csr.adjacency.push_back(local_of_[w]);
    }
    csr.offsets.push_back(csr.adjacency.size());
  }
  return InducedSubgraph(
      Graph(std::move(csr.offsets), std::move(csr.adjacency)),
      std::move(vertices));
}

Result<InducedSubgraph> SubgraphWorkspace::Build(const Graph& parent,
                                                 HybridVertexSet vertices) {
  if (vertices.chunked()) return BuildChunked(parent, vertices);
  if (!vertices.dense()) return Build(parent, vertices.TakeVector());
  const VertexBitset& bits = vertices.bits();
  if (bits.universe() > parent.NumVertices()) {
    return Status::InvalidArgument("induced vertex id out of range");
  }

  // Word-rank table: local id of a member g is the number of members
  // before it, read as prefix[g/64] + popcount(word & low-mask).
  rank_prefix_.assign(bits.num_words() + 1, 0);
  VertexId running = 0;
  for (std::size_t w = 0; w < bits.num_words(); ++w) {
    rank_prefix_[w] = running;
    running += static_cast<VertexId>(std::popcount(bits.data()[w]));
  }
  rank_prefix_[bits.num_words()] = running;
  const auto local_of = [&](VertexId g) {
    const std::uint64_t word = bits.data()[g / 64];
    const std::uint64_t below = word & ((std::uint64_t{1} << (g % 64)) - 1);
    return rank_prefix_[g / 64] +
           static_cast<VertexId>(std::popcount(below));
  };

  VertexSet global_ids;
  global_ids.reserve(vertices.size());
  bits.AppendTo(&global_ids);

  CsrBuffers csr;
  if (!free_.empty()) {
    csr = std::move(free_.back());
    free_.pop_back();
  }
  csr.offsets.clear();
  csr.adjacency.clear();
  csr.offsets.reserve(global_ids.size() + 1);
  csr.offsets.push_back(0);
  for (VertexId global : global_ids) {
    for (VertexId w : parent.Neighbors(global)) {
      if (w < bits.universe() && bits.Test(w)) {
        csr.adjacency.push_back(local_of(w));
      }
    }
    csr.offsets.push_back(csr.adjacency.size());
  }
  return InducedSubgraph(
      Graph(std::move(csr.offsets), std::move(csr.adjacency)),
      std::move(global_ids));
}

Result<InducedSubgraph> SubgraphWorkspace::BuildChunked(
    const Graph& parent, const HybridVertexSet& vertices) {
  const ChunkedVertexSet& cs = vertices.chunk_set();
  const std::vector<ChunkedVertexSet::Chunk>& chunks = cs.chunks();

  // Chunked sets carry no universe; bound-check via the largest member
  // (chunks are key-sorted and non-empty, so it lives in the last one).
  if (!chunks.empty()) {
    const ChunkedVertexSet::Chunk& last = chunks.back();
    VertexId max_low = 0;
    if (last.dense()) {
      std::size_t w = ChunkedVertexSet::kChunkWords;
      while (w > 0 && last.words[w - 1] == 0) --w;
      max_low = static_cast<VertexId>(
          (w - 1) * 64 + (63 - std::countl_zero(last.words[w - 1])));
    } else {
      max_low = last.values.back();
    }
    const VertexId max_id =
        (static_cast<VertexId>(last.key) << ChunkedVertexSet::kChunkBits) +
        max_low;
    if (max_id >= parent.NumVertices()) {
      return Status::InvalidArgument("induced vertex id out of range");
    }
  }

  // Rank tables: local id of member g = members in earlier chunks +
  // in-chunk rank (word prefixes for dense chunks, binary search for
  // sparse ones). Built in one pass over the chunk payloads — no
  // materialized vector, no full-universe stamp pass.
  chunk_base_.assign(chunks.size() + 1, 0);
  chunk_rank_pos_.assign(chunks.size(), 0);
  chunk_word_rank_.clear();
  VertexId running = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    chunk_base_[c] = running;
    if (chunks[c].dense()) {
      chunk_rank_pos_[c] = static_cast<VertexId>(chunk_word_rank_.size());
      VertexId in_chunk = 0;
      for (std::size_t w = 0; w < ChunkedVertexSet::kChunkWords; ++w) {
        chunk_word_rank_.push_back(in_chunk);
        in_chunk += static_cast<VertexId>(std::popcount(chunks[c].words[w]));
      }
      running += in_chunk;
    } else {
      running += chunks[c].count;
    }
  }
  chunk_base_[chunks.size()] = running;

  VertexSet global_ids;
  global_ids.reserve(cs.size());
  cs.AppendTo(&global_ids);

  CsrBuffers csr;
  if (!free_.empty()) {
    csr = std::move(free_.back());
    free_.pop_back();
  }
  csr.offsets.clear();
  csr.adjacency.clear();
  csr.offsets.reserve(global_ids.size() + 1);
  csr.offsets.push_back(0);
  for (VertexId global : global_ids) {
    // Neighbors are sorted, so one forward chunk cursor per row resolves
    // every membership probe to the right chunk in O(deg + chunks).
    std::size_t ci = 0;
    for (VertexId w : parent.Neighbors(global)) {
      const std::uint32_t key = w >> ChunkedVertexSet::kChunkBits;
      while (ci < chunks.size() && chunks[ci].key < key) ++ci;
      if (ci == chunks.size()) break;  // later neighbors are larger still
      const ChunkedVertexSet::Chunk& chunk = chunks[ci];
      if (chunk.key != key) continue;
      const std::uint32_t low =
          w & (ChunkedVertexSet::kChunkCapacity - 1);
      if (chunk.dense()) {
        const std::uint64_t word = chunk.words[low / 64];
        if (((word >> (low % 64)) & 1u) == 0) continue;
        const std::uint64_t below =
            word & ((std::uint64_t{1} << (low % 64)) - 1);
        csr.adjacency.push_back(
            chunk_base_[ci] + chunk_word_rank_[chunk_rank_pos_[ci] + low / 64] +
            static_cast<VertexId>(std::popcount(below)));
      } else {
        auto it = std::lower_bound(chunk.values.begin(), chunk.values.end(),
                                   static_cast<std::uint16_t>(low));
        if (it == chunk.values.end() || *it != low) continue;
        csr.adjacency.push_back(
            chunk_base_[ci] +
            static_cast<VertexId>(it - chunk.values.begin()));
      }
    }
    csr.offsets.push_back(csr.adjacency.size());
  }
  return InducedSubgraph(
      Graph(std::move(csr.offsets), std::move(csr.adjacency)),
      std::move(global_ids));
}

void SubgraphWorkspace::Recycle(InducedSubgraph&& sub) {
  CsrBuffers csr;
  csr.offsets = std::move(sub.graph_.offsets_);
  csr.adjacency = std::move(sub.graph_.adjacency_);
  free_.push_back(std::move(csr));
}

}  // namespace scpm
