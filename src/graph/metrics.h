// Structural graph metrics: density, clustering, cores, components.
//
// The quasi-clique miner's vertex-reduction preprocessing is a thresholded
// core computation, and the paper's null model consumes the degree
// histogram; both live here alongside general diagnostics.

#ifndef SCPM_GRAPH_METRICS_H_
#define SCPM_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace scpm {

/// |E| / C(|V|, 2); 0 for graphs with fewer than two vertices.
double EdgeDensity(const Graph& graph);

/// Density of the subgraph induced by a (sorted) vertex set.
double SubsetDensity(const Graph& graph, const VertexSet& vertices);

/// 2|E| / |V|; 0 for the empty graph.
double AverageDegree(const Graph& graph);

/// Global clustering coefficient (3 * triangles / wedges); 0 when the
/// graph has no wedge.
double GlobalClusteringCoefficient(const Graph& graph);

/// Local clustering coefficient of every vertex.
std::vector<double> LocalClusteringCoefficients(const Graph& graph);

/// Core number of every vertex (largest k such that the vertex survives in
/// the k-core). Linear-time bucket peeling.
std::vector<std::uint32_t> CoreNumbers(const Graph& graph);

/// Sorted vertices of the k-core (maximal subgraph with min degree >= k).
VertexSet KCore(const Graph& graph, std::uint32_t k);

/// Result of connected-components labeling.
struct ComponentLabeling {
  std::vector<std::uint32_t> label;  // per-vertex component id
  std::uint32_t num_components = 0;
};

/// BFS labeling of connected components.
ComponentLabeling ConnectedComponents(const Graph& graph);

/// Size of the largest connected component (0 for the empty graph).
std::size_t LargestComponentSize(const Graph& graph);

/// Total number of triangles in the graph.
std::size_t TriangleCount(const Graph& graph);

/// Pearson degree assortativity over edges; 0 when undefined (e.g., all
/// degrees equal or no edges).
double DegreeAssortativity(const Graph& graph);

/// BFS distances from `source` (kUnreachable for other components).
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
std::vector<std::uint32_t> BfsDistances(const Graph& graph, VertexId source);

/// Lower bound on the diameter via double-sweep BFS from `start`
/// (exact on trees; a strong heuristic elsewhere). 0 for empty graphs.
std::uint32_t DoubleSweepDiameterLowerBound(const Graph& graph,
                                            VertexId start = 0);

}  // namespace scpm

#endif  // SCPM_GRAPH_METRICS_H_
