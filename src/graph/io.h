// Plain-text persistence for graphs and attributed graphs.
//
// Edge-list format: one "u v" pair per line; '#' starts a comment; vertex
// count is max id + 1 unless given explicitly.
// Attribute format: one "v name1 name2 ..." line per vertex (whitespace
// separated; vertices may be omitted or repeated).

#ifndef SCPM_GRAPH_IO_H_
#define SCPM_GRAPH_IO_H_

#include <string>

#include "graph/attributed_graph.h"
#include "graph/graph.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Loads an edge list; vertex count is inferred as max id + 1.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes "u v" lines in canonical order.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Loads an attributed graph from an edge-list file plus an attribute file.
Result<AttributedGraph> LoadAttributedGraph(const std::string& graph_path,
                                            const std::string& attr_path);

/// Writes the graph and attribute files for an attributed graph.
Status SaveAttributedGraph(const AttributedGraph& graph,
                           const std::string& graph_path,
                           const std::string& attr_path);

}  // namespace scpm

#endif  // SCPM_GRAPH_IO_H_
