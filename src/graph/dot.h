// Graphviz DOT export with vertex highlighting.
//
// The paper's Figures 3, 5, and 6 render the subgraph induced by an
// attribute set with the vertices of the discovered pattern highlighted;
// WriteDot produces those renderings (pipe through `dot -Tpng`).

#ifndef SCPM_GRAPH_DOT_H_
#define SCPM_GRAPH_DOT_H_

#include <ostream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace scpm {

/// Rendering options for WriteDot.
struct DotOptions {
  std::string graph_name = "scpm";
  /// Sorted vertex sets to highlight; set i gets the i-th palette color.
  std::vector<VertexSet> highlights;
  /// Optional per-vertex labels (defaults to the vertex id).
  std::vector<std::string> labels;
  /// Skip vertices with no incident edge (declutters sparse plots).
  bool drop_isolated = false;
};

/// Writes `graph` as an undirected Graphviz document.
Status WriteDot(const Graph& graph, const DotOptions& options,
                std::ostream& os);

/// File variant.
Status WriteDot(const Graph& graph, const DotOptions& options,
                const std::string& path);

}  // namespace scpm

#endif  // SCPM_GRAPH_DOT_H_
