#include "graph/graph.h"

#include <algorithm>
#include <string>

namespace scpm {

Graph::Graph(VertexId num_vertices)
    : offsets_(static_cast<std::size_t>(num_vertices) + 1, 0) {}

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               std::vector<Edge> edges) {
  // Canonicalize, validate, and drop self-loops.
  std::vector<Edge> clean;
  clean.reserve(edges.size());
  for (Edge e : edges) {
    if (e.u >= num_vertices || e.v >= num_vertices) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(e.u) + ", " +
          std::to_string(e.v) + ") with " + std::to_string(num_vertices) +
          " vertices");
    }
    if (e.u == e.v) continue;  // Simple graph: ignore self-loops.
    if (e.u > e.v) std::swap(e.u, e.v);
    clean.push_back(e);
  }
  std::sort(clean.begin(), clean.end(), [](const Edge& a, const Edge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  });
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());

  std::vector<std::size_t> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                   0);
  for (const Edge& e : clean) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adjacency(clean.size() * 2);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : clean) {
    adjacency[cursor[e.u]++] = e.v;
    adjacency[cursor[e.v]++] = e.u;
  }
  // Edges were inserted in canonical sorted order, but each vertex receives
  // neighbors from both orientations; sort each list.
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  return Graph(std::move(offsets), std::move(adjacency));
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u == v) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint32_t Graph::MaxDegree() const {
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

std::vector<std::size_t> Graph::DegreeHistogram() const {
  std::vector<std::size_t> counts(MaxDegree() + 1, 0);
  for (VertexId v = 0; v < NumVertices(); ++v) ++counts[Degree(v)];
  return counts;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

Result<Graph> GraphBuilder::Build() {
  std::vector<Edge> edges;
  edges.swap(edges_);
  return Graph::FromEdges(num_vertices_, std::move(edges));
}

}  // namespace scpm
