#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace scpm {

Result<Graph> ErdosRenyi(VertexId n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  std::vector<Edge> edges;
  if (p > 0.0 && n > 1) {
    // Enumerate pairs (u, v), u < v, in lexicographic order and skip ahead
    // by geometric gaps: O(n + m) expected.
    const double log1mp = std::log1p(-p);
    std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t index = 0;
    if (p >= 1.0) {
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
      }
    } else {
      while (true) {
        const double r = rng.NextDouble();
        const std::uint64_t gap =
            static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
        if (total - index <= gap) break;
        index += gap;
        // Decode linear pair index -> (u, v).
        std::uint64_t rem = index;
        VertexId u = 0;
        std::uint64_t row = n - 1;
        while (rem >= row) {
          rem -= row;
          --row;
          ++u;
        }
        const VertexId v = static_cast<VertexId>(u + 1 + rem);
        edges.push_back({u, v});
        ++index;
        if (index >= total) break;
      }
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Result<Graph> BarabasiAlbert(VertexId n, std::uint32_t m, Rng& rng) {
  if (m < 1) return Status::InvalidArgument("m must be >= 1");
  if (n <= m) return Status::InvalidArgument("need n > m");

  std::vector<Edge> edges;
  // Target list: one entry per edge endpoint, so sampling a uniform entry
  // is sampling proportionally to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * m * 2);

  // Seed clique on vertices [0, m].
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<VertexId> targets;
  for (VertexId v = m + 1; v < n; ++v) {
    targets.clear();
    while (targets.size() < m) {
      const VertexId t =
          endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (VertexId t : targets) {
      edges.push_back({t, v});
      endpoints.push_back(t);
      endpoints.push_back(v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

std::vector<double> PowerLawWeights(VertexId n, double exponent,
                                    double avg_degree) {
  SCPM_CHECK_GT(exponent, 2.0);
  std::vector<double> weights(n);
  const double alpha = 1.0 / (exponent - 1.0);
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, -alpha);
  }
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (double& w : weights) w *= scale;
  return weights;
}

Result<Graph> ChungLu(const std::vector<double>& weights, Rng& rng) {
  const VertexId n = static_cast<VertexId>(weights.size());
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (n == 0 || total <= 0.0) return Graph::FromEdges(n, {});

  // Miller–Hagberg: process vertices in non-increasing weight order; for
  // each u walk candidate partners v with geometric skips calibrated to an
  // upper bound q = w_u * w_v / total, accepting with ratio p / q.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return weights[a] > weights[b];
  });

  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) {
    const double wu = weights[order[i]];
    if (wu <= 0.0) break;
    VertexId j = i + 1;
    double q = std::min(1.0, wu * (j < n ? weights[order[j]] : 0.0) / total);
    while (j < n && q > 0.0) {
      if (q < 1.0) {
        const double r = rng.NextDouble();
        j += static_cast<VertexId>(
            std::floor(std::log1p(-r) / std::log1p(-q)));
      }
      if (j >= n) break;
      const double p = std::min(1.0, wu * weights[order[j]] / total);
      if (rng.NextDouble() < p / q) {
        edges.push_back({order[i], order[j]});
      }
      q = p;
      ++j;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Result<Graph> WattsStrogatz(VertexId n, std::uint32_t k, double beta,
                            Rng& rng) {
  if (k < 2 || k % 2 != 0) {
    return Status::InvalidArgument("k must be even and >= 2");
  }
  if (n <= k) return Status::InvalidArgument("need n > k");
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.NextBool(beta)) {
        // Rewire to a random endpoint distinct from u (duplicate edges are
        // collapsed by the builder, mirroring the classic model closely
        // enough for our purposes).
        v = static_cast<VertexId>(rng.NextBounded(n));
        if (v == u) v = static_cast<VertexId>((u + 1) % n);
      }
      edges.push_back({u, v});
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

std::vector<PlantedGroup> PlantGroups(VertexId n, std::size_t num_groups,
                                      std::uint32_t min_size,
                                      std::uint32_t max_size, double density,
                                      Rng& rng, std::vector<Edge>* edges) {
  SCPM_CHECK_GE(max_size, min_size);
  SCPM_CHECK_GE(n, max_size);
  std::vector<PlantedGroup> groups;
  groups.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::uint32_t size = static_cast<std::uint32_t>(
        rng.NextInt(min_size, max_size));
    PlantedGroup group;
    group.members = rng.SampleWithoutReplacement(n, size);
    group.density = density;
    for (std::size_t i = 0; i < group.members.size(); ++i) {
      for (std::size_t j = i + 1; j < group.members.size(); ++j) {
        if (rng.NextBool(density)) {
          edges->push_back({group.members[i], group.members[j]});
        }
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace scpm
