// Fundamental identifier types shared across the library.

#ifndef SCPM_GRAPH_TYPES_H_
#define SCPM_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace scpm {

/// Dense 0-based vertex identifier.
using VertexId = std::uint32_t;

/// Dense 0-based attribute identifier (interned attribute name).
using AttributeId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Sentinel for "no attribute".
inline constexpr AttributeId kInvalidAttribute = static_cast<AttributeId>(-1);

/// Sorted duplicate-free vertex set.
using VertexSet = std::vector<VertexId>;

/// Sorted duplicate-free attribute set (an "itemset" over attributes).
using AttributeSet = std::vector<AttributeId>;

/// An undirected edge; canonical form has first <= second.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace scpm

#endif  // SCPM_GRAPH_TYPES_H_
