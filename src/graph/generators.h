// Random graph generators.
//
// These provide the structural substrate for the synthetic dataset
// analogues (src/datasets) that stand in for the paper's DBLP / LastFm /
// CiteSeer crawls, and for property tests.

#ifndef SCPM_GRAPH_GENERATORS_H_
#define SCPM_GRAPH_GENERATORS_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/random.h"
#include "util/result.h"

namespace scpm {

/// G(n, p): every pair is an edge independently with probability p.
/// Uses geometric skipping, O(n + m) expected time.
Result<Graph> ErdosRenyi(VertexId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m + 1` vertices; each new vertex attaches to `m` distinct existing
/// vertices chosen proportionally to degree. Requires n > m >= 1.
Result<Graph> BarabasiAlbert(VertexId n, std::uint32_t m, Rng& rng);

/// Chung–Lu random graph with expected degree sequence `weights`:
/// P(u ~ v) = min(1, w_u * w_v / sum(w)). O(n + m) expected time via the
/// Miller–Hagberg sorted-weight algorithm.
Result<Graph> ChungLu(const std::vector<double>& weights, Rng& rng);

/// Power-law weight sequence w_i ~ i^{-1/(exponent-1)} scaled so that the
/// average expected degree is `avg_degree`. exponent > 2.
std::vector<double> PowerLawWeights(VertexId n, double exponent,
                                    double avg_degree);

/// Watts–Strogatz small world: a ring lattice where each vertex connects
/// to its k nearest neighbors (k even), with each edge rewired to a
/// uniform random endpoint with probability beta. Requires n > k >= 2.
Result<Graph> WattsStrogatz(VertexId n, std::uint32_t k, double beta,
                            Rng& rng);

/// Description of one planted dense group.
struct PlantedGroup {
  VertexSet members;    // sorted
  double density = 1.0; // intra-group edge probability used at planting
};

/// Plants `num_groups` random vertex groups of size in
/// [min_size, max_size] into `edges` (appended), each pair inside a group
/// connected with probability `density`. Groups may overlap. Returns the
/// planted groups.
std::vector<PlantedGroup> PlantGroups(VertexId n, std::size_t num_groups,
                                      std::uint32_t min_size,
                                      std::uint32_t max_size, double density,
                                      Rng& rng, std::vector<Edge>* edges);

}  // namespace scpm

#endif  // SCPM_GRAPH_GENERATORS_H_
