#include "graph/attributed_graph.h"

#include <algorithm>

#include "util/sorted_ops.h"

namespace scpm {

bool AttributedGraph::VertexHasAttribute(VertexId v, AttributeId a) const {
  auto attrs = Attributes(v);
  return std::binary_search(attrs.begin(), attrs.end(), a);
}

VertexSet AttributedGraph::VerticesWithAll(const AttributeSet& attrs) const {
  if (attrs.empty()) {
    VertexSet all(NumVertices());
    for (VertexId v = 0; v < NumVertices(); ++v) all[v] = v;
    return all;
  }
  VertexSet current = inverted_index_[attrs[0]];
  VertexSet next;
  for (std::size_t i = 1; i < attrs.size() && !current.empty(); ++i) {
    SortedIntersect(current, inverted_index_[attrs[i]], &next);
    current.swap(next);
  }
  return current;
}

AttributeId AttributedGraph::FindAttribute(std::string_view name) const {
  auto it = name_to_id_.find(std::string(name));
  return it == name_to_id_.end() ? kInvalidAttribute : it->second;
}

std::string AttributedGraph::FormatAttributeSet(
    const AttributeSet& attrs) const {
  std::string out = "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[attrs[i]];
  }
  out += "}";
  return out;
}

AttributeId AttributedGraphBuilder::InternAttribute(std::string_view name) {
  auto [it, inserted] =
      name_to_id_.try_emplace(std::string(name),
                              static_cast<AttributeId>(names_.size()));
  if (inserted) names_.emplace_back(name);
  return it->second;
}

Status AttributedGraphBuilder::AddVertexAttribute(VertexId v, AttributeId a) {
  if (v >= num_vertices()) {
    return Status::InvalidArgument("vertex id out of range");
  }
  if (a >= names_.size()) {
    return Status::InvalidArgument("attribute id was not interned");
  }
  vertex_attrs_[v].push_back(a);
  return Status::OK();
}

Result<AttributedGraph> AttributedGraphBuilder::Build() {
  Result<Graph> graph = graph_builder_.Build();
  if (!graph.ok()) return graph.status();

  AttributedGraph out;
  out.graph_ = std::move(graph).value();
  out.names_ = std::move(names_);
  out.name_to_id_ = std::move(name_to_id_);

  const VertexId n = out.graph_.NumVertices();
  out.attr_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    SortUnique(&vertex_attrs_[v]);
    out.attr_offsets_[v + 1] = out.attr_offsets_[v] + vertex_attrs_[v].size();
  }
  out.attr_values_.reserve(out.attr_offsets_[n]);
  out.inverted_index_.assign(out.names_.size(), {});
  for (VertexId v = 0; v < n; ++v) {
    for (AttributeId a : vertex_attrs_[v]) {
      out.attr_values_.push_back(a);
      out.inverted_index_[a].push_back(v);
    }
  }
  // Vertices were visited in increasing order, so each tidset is sorted.
  return out;
}

}  // namespace scpm
