// Immutable undirected graph in compressed-sparse-row form.
//
// Adjacency lists are sorted and duplicate-free, which makes neighborhood
// intersection (the miners' inner loop) a linear merge and edge lookup a
// binary search.

#ifndef SCPM_GRAPH_GRAPH_H_
#define SCPM_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Immutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Empty graph with `num_vertices` isolated vertices.
  explicit Graph(VertexId num_vertices = 0);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Builds from an edge list. Self-loops are rejected, duplicate edges
  /// (in either orientation) are collapsed. Endpoints must be
  /// < num_vertices.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge> edges);

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  std::size_t NumEdges() const { return adjacency_.size() / 2; }

  std::uint32_t Degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// True iff {u, v} is an edge. O(log deg(min side)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Largest vertex degree (0 for the empty graph).
  std::uint32_t MaxDegree() const;

  /// counts[d] = number of vertices with degree d, for d in [0, MaxDegree].
  std::vector<std::size_t> DegreeHistogram() const;

  /// Edge list in canonical (u < v) order, sorted.
  std::vector<Edge> Edges() const;

 private:
  // SubgraphWorkspace builds CSR arrays directly into recycled buffers and
  // takes them back when a subgraph dies.
  friend class SubgraphWorkspace;

  Graph(std::vector<std::size_t> offsets, std::vector<VertexId> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  std::vector<std::size_t> offsets_;   // size NumVertices()+1
  std::vector<VertexId> adjacency_;    // concatenated sorted neighbor lists
};

/// Incremental edge accumulator producing an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }

  /// Records an undirected edge; duplicates and self-loops are tolerated
  /// here and cleaned up in Build().
  void AddEdge(VertexId u, VertexId v) { edges_.push_back({u, v}); }

  /// Number of (possibly duplicated) recorded edges.
  std::size_t NumRecordedEdges() const { return edges_.size(); }

  /// Validates endpoints and produces the graph. The builder is left empty.
  Result<Graph> Build();

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace scpm

#endif  // SCPM_GRAPH_GRAPH_H_
