#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace scpm {
namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string CleanLine(const std::string& line) {
  std::string out = line;
  if (auto pos = out.find('#'); pos != std::string::npos) out.resize(pos);
  while (!out.empty() && (out.back() == '\r' || out.back() == ' ' ||
                          out.back() == '\t')) {
    out.pop_back();
  }
  std::size_t start = 0;
  while (start < out.size() && (out[start] == ' ' || out[start] == '\t')) {
    ++start;
  }
  return out.substr(start);
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::vector<Edge> edges;
  VertexId max_id = 0;
  bool any_vertex = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string clean = CleanLine(line);
    if (clean.empty()) continue;
    std::istringstream ss(clean);
    std::uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": expected 'u v'");
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": vertex id too large");
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
    any_vertex = true;
  }
  const VertexId n = any_vertex ? max_id + 1 : 0;
  return Graph::FromEdges(n, std::move(edges));
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# scpm edge list: " << graph.NumVertices() << " vertices, "
      << graph.NumEdges() << " edges\n";
  for (const Edge& e : graph.Edges()) out << e.u << " " << e.v << "\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<AttributedGraph> LoadAttributedGraph(const std::string& graph_path,
                                            const std::string& attr_path) {
  Result<Graph> graph = LoadEdgeList(graph_path);
  if (!graph.ok()) return graph.status();

  std::ifstream in(attr_path);
  if (!in) return Status::IoError("cannot open " + attr_path);

  AttributedGraphBuilder builder(graph->NumVertices());
  for (const Edge& e : graph->Edges()) builder.AddEdge(e.u, e.v);

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string clean = CleanLine(line);
    if (clean.empty()) continue;
    std::istringstream ss(clean);
    std::uint64_t v = 0;
    if (!(ss >> v)) {
      return Status::IoError(attr_path + ":" + std::to_string(line_no) +
                             ": expected vertex id");
    }
    if (v >= graph->NumVertices()) {
      return Status::IoError(attr_path + ":" + std::to_string(line_no) +
                             ": vertex id out of range");
    }
    std::string name;
    while (ss >> name) {
      SCPM_RETURN_IF_ERROR(
          builder.AddVertexAttribute(static_cast<VertexId>(v), name));
    }
  }
  return builder.Build();
}

Status SaveAttributedGraph(const AttributedGraph& graph,
                           const std::string& graph_path,
                           const std::string& attr_path) {
  SCPM_RETURN_IF_ERROR(SaveEdgeList(graph.graph(), graph_path));
  std::ofstream out(attr_path);
  if (!out) {
    return Status::IoError("cannot open " + attr_path + " for writing");
  }
  out << "# scpm attributes: " << graph.NumAttributes() << " attributes\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto attrs = graph.Attributes(v);
    if (attrs.empty()) continue;
    out << v;
    for (AttributeId a : attrs) out << " " << graph.AttributeName(a);
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + attr_path);
  return Status::OK();
}

}  // namespace scpm
