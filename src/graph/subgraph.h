// Vertex-induced subgraphs with local/global id mapping.
//
// SCPM repeatedly materializes G(S), the subgraph induced by the vertices
// carrying an attribute set S; InducedSubgraph relabels that vertex set to
// [0, k) and builds a local CSR graph, keeping the mapping back to the
// parent graph.

#ifndef SCPM_GRAPH_SUBGRAPH_H_
#define SCPM_GRAPH_SUBGRAPH_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace scpm {

/// A subgraph of a parent graph induced by a vertex subset.
class InducedSubgraph {
 public:
  /// Builds the subgraph of `parent` induced by `vertices` (sorted,
  /// duplicate-free, all ids < parent.NumVertices()).
  static Result<InducedSubgraph> Create(const Graph& parent,
                                        VertexSet vertices);

  /// The relabeled graph over local ids [0, vertices.size()).
  const Graph& graph() const { return graph_; }

  /// Number of vertices in the subgraph.
  VertexId NumVertices() const { return graph_.NumVertices(); }

  /// Sorted global ids; global_ids()[local] is the parent-graph id.
  const VertexSet& global_ids() const { return global_ids_; }

  /// Parent-graph id of a local vertex.
  VertexId ToGlobal(VertexId local) const { return global_ids_[local]; }

  /// Local id of a parent-graph vertex, or kInvalidVertex when the vertex
  /// is not part of the subgraph. O(log n).
  VertexId ToLocal(VertexId global) const;

  /// Maps a set of local ids to sorted global ids.
  VertexSet ToGlobal(const VertexSet& locals) const;

 private:
  InducedSubgraph(Graph graph, VertexSet global_ids)
      : graph_(std::move(graph)), global_ids_(std::move(global_ids)) {}

  Graph graph_;
  VertexSet global_ids_;
};

}  // namespace scpm

#endif  // SCPM_GRAPH_SUBGRAPH_H_
