// Vertex-induced subgraphs with local/global id mapping.
//
// SCPM repeatedly materializes G(S), the subgraph induced by the vertices
// carrying an attribute set S; InducedSubgraph relabels that vertex set to
// [0, k) and builds a local CSR graph, keeping the mapping back to the
// parent graph.
//
// SubgraphWorkspace removes the materialization from the allocation hot
// path: it builds the local CSR directly (single pass over the parent
// adjacency, no intermediate edge list, no sorting) into buffers that are
// recycled across calls, using an epoch-stamped global-to-local map that
// never needs clearing. A dense (bitmap) vertex set skips the stamp map
// entirely: membership is a bit probe and local ids come from a word-rank
// table, so the adjacency filter touches universe/64 words instead of two
// full-universe u32 arrays.

#ifndef SCPM_GRAPH_SUBGRAPH_H_
#define SCPM_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/hybrid_set.h"
#include "util/result.h"

namespace scpm {

class SubgraphWorkspace;

/// A subgraph of a parent graph induced by a vertex subset.
class InducedSubgraph {
 public:
  /// Builds the subgraph of `parent` induced by `vertices` (sorted,
  /// duplicate-free, all ids < parent.NumVertices()).
  static Result<InducedSubgraph> Create(const Graph& parent,
                                        VertexSet vertices);

  /// The relabeled graph over local ids [0, vertices.size()).
  const Graph& graph() const { return graph_; }

  /// Number of vertices in the subgraph.
  VertexId NumVertices() const { return graph_.NumVertices(); }

  /// Sorted global ids; global_ids()[local] is the parent-graph id.
  const VertexSet& global_ids() const { return global_ids_; }

  /// Parent-graph id of a local vertex.
  VertexId ToGlobal(VertexId local) const { return global_ids_[local]; }

  /// Local id of a parent-graph vertex, or kInvalidVertex when the vertex
  /// is not part of the subgraph. O(log n).
  VertexId ToLocal(VertexId global) const;

  /// Maps a set of local ids to sorted global ids.
  VertexSet ToGlobal(const VertexSet& locals) const;

 private:
  friend class SubgraphWorkspace;

  InducedSubgraph(Graph graph, VertexSet global_ids)
      : graph_(std::move(graph)), global_ids_(std::move(global_ids)) {}

  Graph graph_;
  VertexSet global_ids_;
};

/// Scratch buffers for repeated subgraph induction against one (or more)
/// parent graphs. Build() produces a regular InducedSubgraph whose CSR
/// storage comes from an internal free list; Recycle() takes the storage
/// back once the subgraph is dead. Nested use is fine (a subgraph built
/// from a workspace may itself be a parent in the next Build before being
/// recycled); the workspace is not thread-safe — use one per worker.
class SubgraphWorkspace {
 public:
  SubgraphWorkspace() = default;

  /// Same contract and result as InducedSubgraph::Create, but allocation-
  /// free once the free list and the id map have warmed up.
  Result<InducedSubgraph> Build(const Graph& parent, VertexSet vertices);

  /// Hybrid-set entry point: a sparse set delegates to the vector build; a
  /// dense set keeps the bitmap as the membership structure and resolves
  /// local ids by rank (prefix popcounts); a chunked set walks its chunk
  /// list directly — membership is a per-chunk bit probe or u16 search
  /// and local ids come from per-chunk rank tables, so the mid-density
  /// band skips the vector materialization and the full stamp-map pass.
  /// All three produce the identical subgraph. `vertices` is consumed.
  Result<InducedSubgraph> Build(const Graph& parent, HybridVertexSet vertices);

  /// Reclaims the CSR buffers of a subgraph produced by Build; the
  /// subgraph is consumed.
  void Recycle(InducedSubgraph&& sub);

 private:
  struct CsrBuffers {
    std::vector<std::size_t> offsets;
    std::vector<VertexId> adjacency;
  };

  std::vector<CsrBuffers> free_;

  // stamp_[g] == epoch_ marks g as a member of the vertex set currently
  // being built, with local id local_of_[g]. Bumping epoch_ invalidates
  // the whole map in O(1).
  std::vector<std::uint32_t> stamp_;
  std::vector<VertexId> local_of_;
  std::uint32_t epoch_ = 0;

  // rank_prefix_[w] = number of member bits in words [0, w) of the dense
  // build's bitmap; local id of g = rank_prefix_[g/64] + popcount of the
  // lower bits of g's word.
  std::vector<VertexId> rank_prefix_;

  // Chunked-build rank tables. chunk_base_[c] = members in chunks [0, c);
  // dense chunks additionally get 1024 per-word in-chunk prefixes at
  // chunk_word_rank_[chunk_rank_pos_[c] ...]; sparse chunks rank by
  // binary search over their u16 payload.
  std::vector<VertexId> chunk_base_;
  std::vector<VertexId> chunk_rank_pos_;
  std::vector<VertexId> chunk_word_rank_;

  Result<InducedSubgraph> BuildChunked(const Graph& parent,
                                       const HybridVertexSet& vertices);
};

}  // namespace scpm

#endif  // SCPM_GRAPH_SUBGRAPH_H_
