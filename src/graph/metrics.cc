#include "graph/metrics.h"

#include <algorithm>
#include <deque>
#include <span>

#include "util/hybrid_set.h"
#include "util/sorted_ops.h"

namespace scpm {

double EdgeDensity(const Graph& graph) {
  const double n = static_cast<double>(graph.NumVertices());
  if (n < 2.0) return 0.0;
  return 2.0 * static_cast<double>(graph.NumEdges()) / (n * (n - 1.0));
}

double SubsetDensity(const Graph& graph, const VertexSet& vertices) {
  const std::size_t n = vertices.size();
  if (n < 2) return 0.0;
  std::size_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto nbrs = graph.Neighbors(vertices[i]);
    // Count neighbors inside the (sorted) subset that are > vertices[i].
    auto it = std::upper_bound(nbrs.begin(), nbrs.end(), vertices[i]);
    std::size_t j = i + 1;
    while (it != nbrs.end() && j < n) {
      if (*it < vertices[j]) {
        ++it;
      } else if (vertices[j] < *it) {
        ++j;
      } else {
        ++edges;
        ++it;
        ++j;
      }
    }
  }
  const double nd = static_cast<double>(n);
  return 2.0 * static_cast<double>(edges) / (nd * (nd - 1.0));
}

double AverageDegree(const Graph& graph) {
  if (graph.NumVertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(graph.NumEdges()) /
         static_cast<double>(graph.NumVertices());
}

namespace {

/// Common-neighbor counting via a bitmap "row": the caller loads N(v)
/// into `row` once, then |N(u) ∩ N(v)| is one branchless bit probe per
/// element of N(u) instead of an O(deg(u) + deg(v)) merge. Exactly the
/// same integer counts as the former merge, so every metric built on it
/// is unchanged bit for bit.
std::size_t RowIntersectCount(const VertexBitset& row,
                              std::span<const VertexId> nbrs) {
  std::size_t count = 0;
  for (VertexId w : nbrs) count += row.Test(w) ? 1 : 0;
  return count;
}

/// Number of edges among the neighbors of v (i.e., triangles through v),
/// with `row` holding the bits of N(v).
std::size_t TrianglesThrough(const Graph& graph, VertexId v,
                             const VertexBitset& row) {
  std::size_t count = 0;
  for (VertexId u : graph.Neighbors(v)) {
    if (u <= v) continue;  // Count each (v, u) direction once; adjust below.
    count += RowIntersectCount(row, graph.Neighbors(u));
  }
  return count;
}

}  // namespace

double GlobalClusteringCoefficient(const Graph& graph) {
  // triangles counted 3x when summing per-edge common-neighbor counts over
  // u < v pairs... TrianglesThrough(v) with u > v counts each triangle
  // {v, u, w} once per ordered pair (v, u) with v < u and w adjacent to
  // both; each triangle has 3 such pairs, so the sum is 3 * #triangles.
  std::size_t closed_paths = 0;  // 3 * triangles
  std::size_t wedges = 0;
  VertexBitset row(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    // Load/unload only N(v)'s bits, so the scratch row costs O(deg(v))
    // per vertex, not O(|V|/64).
    for (VertexId u : graph.Neighbors(v)) row.Set(u);
    closed_paths += TrianglesThrough(graph, v, row);
    for (VertexId u : graph.Neighbors(v)) row.Reset(u);
    const std::size_t d = graph.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed_paths) / static_cast<double>(wedges);
}

std::vector<double> LocalClusteringCoefficients(const Graph& graph) {
  std::vector<double> out(graph.NumVertices(), 0.0);
  VertexBitset row(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const std::size_t d = graph.Degree(v);
    if (d < 2) continue;
    // Edges among N(v): for each neighbor u, |N(v) ∩ N(u)| counts each
    // such edge twice.
    for (VertexId u : graph.Neighbors(v)) row.Set(u);
    std::size_t twice_edges = 0;
    for (VertexId u : graph.Neighbors(v)) {
      twice_edges += RowIntersectCount(row, graph.Neighbors(u));
    }
    for (VertexId u : graph.Neighbors(v)) row.Reset(u);
    out[v] = static_cast<double>(twice_edges) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return out;
}

std::vector<std::uint32_t> CoreNumbers(const Graph& graph) {
  // Batagelj–Zaveršnik bucket peeling.
  const VertexId n = graph.NumVertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::size_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  std::size_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> vert(n);
  std::vector<std::size_t> pos(n);
  {
    std::vector<std::size_t> cursor(bin.begin(), bin.end());
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      vert[pos[v]] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    core[v] = degree[v];
    for (VertexId u : graph.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u to the front of its bucket, then shift it down a bucket.
        const std::uint32_t du = degree[u];
        const std::size_t pu = pos[u];
        const std::size_t pw = bin[du];
        const VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

VertexSet KCore(const Graph& graph, std::uint32_t k) {
  const std::vector<std::uint32_t> core = CoreNumbers(graph);
  VertexSet out;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

ComponentLabeling ConnectedComponents(const Graph& graph) {
  ComponentLabeling result;
  const VertexId n = graph.NumVertices();
  result.label.assign(n, static_cast<std::uint32_t>(-1));
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (result.label[s] != static_cast<std::uint32_t>(-1)) continue;
    const std::uint32_t id = result.num_components++;
    result.label[s] = id;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (VertexId u : graph.Neighbors(v)) {
        if (result.label[u] == static_cast<std::uint32_t>(-1)) {
          result.label[u] = id;
          queue.push_back(u);
        }
      }
    }
  }
  return result;
}

std::size_t TriangleCount(const Graph& graph) {
  std::size_t closed = 0;
  VertexBitset row(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) row.Set(u);
    closed += TrianglesThrough(graph, v, row);
    for (VertexId u : graph.Neighbors(v)) row.Reset(u);
  }
  return closed / 3;
}

double DegreeAssortativity(const Graph& graph) {
  // Pearson correlation of endpoint degrees over all directed edge
  // instances (Newman 2002).
  double sum_x = 0, sum_xx = 0, sum_xy = 0;
  std::size_t m2 = 0;  // directed edge count
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    const double du = graph.Degree(u);
    for (VertexId v : graph.Neighbors(u)) {
      const double dv = graph.Degree(v);
      sum_x += du;
      sum_xx += du * du;
      sum_xy += du * dv;
      ++m2;
    }
  }
  if (m2 == 0) return 0.0;
  const double n = static_cast<double>(m2);
  const double mean = sum_x / n;
  const double var = sum_xx / n - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sum_xy / n - mean * mean;
  return cov / var;
}

std::vector<std::uint32_t> BfsDistances(const Graph& graph,
                                        VertexId source) {
  std::vector<std::uint32_t> dist(graph.NumVertices(), kUnreachable);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::uint32_t DoubleSweepDiameterLowerBound(const Graph& graph,
                                            VertexId start) {
  if (graph.NumVertices() == 0) return 0;
  auto farthest = [&graph](VertexId s) {
    const auto dist = BfsDistances(graph, s);
    VertexId best = s;
    std::uint32_t best_dist = 0;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (dist[v] != kUnreachable && dist[v] > best_dist) {
        best = v;
        best_dist = dist[v];
      }
    }
    return std::make_pair(best, best_dist);
  };
  const auto [mid, _] = farthest(start);
  return farthest(mid).second;
}

std::size_t LargestComponentSize(const Graph& graph) {
  const ComponentLabeling labeling = ConnectedComponents(graph);
  std::vector<std::size_t> sizes(labeling.num_components, 0);
  for (std::uint32_t label : labeling.label) ++sizes[label];
  std::size_t best = 0;
  for (std::size_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace scpm
