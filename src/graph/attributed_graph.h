// Attributed graph: the paper's G = (V, E, A, F).
//
// Each vertex carries a sorted set of attribute ids; attribute names are
// interned into dense ids. The inverted index attribute -> sorted vertex
// list ("tidset") is precomputed because every attribute-set operation in
// the miners is a tidset intersection.

#ifndef SCPM_GRAPH_ATTRIBUTED_GRAPH_H_
#define SCPM_GRAPH_ATTRIBUTED_GRAPH_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace scpm {

/// Immutable attributed graph; build with AttributedGraphBuilder.
class AttributedGraph {
 public:
  AttributedGraph() = default;

  const Graph& graph() const { return graph_; }
  VertexId NumVertices() const { return graph_.NumVertices(); }
  std::size_t NumAttributes() const { return names_.size(); }

  /// Total number of (vertex, attribute) incidences.
  std::size_t NumAttributeOccurrences() const { return attr_values_.size(); }

  /// Sorted attribute ids of vertex v.
  std::span<const AttributeId> Attributes(VertexId v) const {
    return {attr_values_.data() + attr_offsets_[v],
            attr_values_.data() + attr_offsets_[v + 1]};
  }

  bool VertexHasAttribute(VertexId v, AttributeId a) const;

  /// Sorted vertices carrying attribute `a` (its tidset). The paper's
  /// sigma({a}) is VerticesWith(a).size().
  const VertexSet& VerticesWith(AttributeId a) const {
    return inverted_index_[a];
  }

  /// Sorted vertices carrying every attribute of (sorted) `attrs`: the
  /// paper's V(S). Returns all vertices when attrs is empty.
  VertexSet VerticesWithAll(const AttributeSet& attrs) const;

  /// Support sigma(S) = |V(S)|.
  std::size_t Support(const AttributeSet& attrs) const {
    return VerticesWithAll(attrs).size();
  }

  const std::string& AttributeName(AttributeId a) const { return names_[a]; }

  /// Id of a named attribute, or kInvalidAttribute when unknown.
  AttributeId FindAttribute(std::string_view name) const;

  /// Human-readable "{name1, name2}" rendering of an attribute set.
  std::string FormatAttributeSet(const AttributeSet& attrs) const;

 private:
  friend class AttributedGraphBuilder;

  Graph graph_;
  // CSR of per-vertex sorted attribute ids.
  std::vector<std::size_t> attr_offsets_;
  std::vector<AttributeId> attr_values_;
  std::vector<VertexSet> inverted_index_;  // attribute -> sorted vertices
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> name_to_id_;
};

/// Accumulates edges, attribute names, and vertex-attribute incidences.
class AttributedGraphBuilder {
 public:
  explicit AttributedGraphBuilder(VertexId num_vertices)
      : graph_builder_(num_vertices),
        vertex_attrs_(num_vertices) {}

  VertexId num_vertices() const { return graph_builder_.num_vertices(); }

  void AddEdge(VertexId u, VertexId v) { graph_builder_.AddEdge(u, v); }

  /// Interns an attribute name, returning its dense id (stable across
  /// repeated calls with the same name).
  AttributeId InternAttribute(std::string_view name);

  /// Attaches attribute `a` to vertex `v`. `a` must come from
  /// InternAttribute; duplicates are collapsed at Build().
  Status AddVertexAttribute(VertexId v, AttributeId a);

  /// Convenience: intern + attach.
  Status AddVertexAttribute(VertexId v, std::string_view name) {
    return AddVertexAttribute(v, InternAttribute(name));
  }

  Result<AttributedGraph> Build();

 private:
  GraphBuilder graph_builder_;
  std::vector<std::vector<AttributeId>> vertex_attrs_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> name_to_id_;
};

}  // namespace scpm

#endif  // SCPM_GRAPH_ATTRIBUTED_GRAPH_H_
