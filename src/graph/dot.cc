#include "graph/dot.h"

#include <array>
#include <fstream>

#include "util/sorted_ops.h"

namespace scpm {
namespace {

constexpr std::array<const char*, 6> kPalette = {
    "#e6550d", "#3182bd", "#31a354", "#756bb1", "#636363", "#fdae6b",
};

}  // namespace

Status WriteDot(const Graph& graph, const DotOptions& options,
                std::ostream& os) {
  if (!options.labels.empty() &&
      options.labels.size() != graph.NumVertices()) {
    return Status::InvalidArgument(
        "labels must be empty or one per vertex");
  }
  for (const VertexSet& set : options.highlights) {
    if (!IsStrictlySorted(set)) {
      return Status::InvalidArgument("highlight sets must be sorted");
    }
    if (!set.empty() && set.back() >= graph.NumVertices()) {
      return Status::InvalidArgument("highlight vertex out of range");
    }
  }

  os << "graph " << options.graph_name << " {\n"
     << "  node [shape=circle fontsize=10];\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (options.drop_isolated && graph.Degree(v) == 0) continue;
    os << "  n" << v;
    os << " [";
    if (!options.labels.empty()) {
      os << "label=\"" << options.labels[v] << "\" ";
    }
    for (std::size_t i = 0; i < options.highlights.size(); ++i) {
      if (SortedContains(options.highlights[i], v)) {
        os << "style=filled fillcolor=\"" << kPalette[i % kPalette.size()]
           << "\" ";
        break;
      }
    }
    os << "];\n";
  }
  for (const Edge& e : graph.Edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
  if (!os) return Status::IoError("dot write failed");
  return Status::OK();
}

Status WriteDot(const Graph& graph, const DotOptions& options,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteDot(graph, options, out);
}

}  // namespace scpm
