#!/usr/bin/env python3
"""Perf-trend gate over the BENCH_*.json artifacts.

Compares every timing row of the fresh bench JSON files against the same
row in a baseline directory (the previous CI run's artifact) and fails on
large regressions:

    bench_trend.py --baseline prev/ --fresh . [--threshold 0.30]
                   [--min-seconds 0.005]

A row regresses when fresh > baseline * (1 + threshold) AND both timings
exceed --min-seconds (sub-5ms rows are timer noise on shared runners).
Rows are matched by (bench, section, label); rows present on only one
side are reported but never fail the gate (scenarios come and go).
A missing/empty baseline directory is a clean pass so the first run of a
new branch does not fail.

Exit codes: 0 ok / baseline missing, 1 regression found, 2 usage error.
"""

import argparse
import glob
import json
import os
import sys


def load_rows(directory, exclude=None):
    """(bench, section, label) -> seconds for every BENCH_*.json below
    `directory` (searched recursively: artifact downloads may nest).
    Files under `exclude` are skipped, so --fresh may be the repo root
    even with the baseline checkout nested inside it."""
    rows = {}
    exclude = os.path.abspath(exclude) + os.sep if exclude else None
    pattern = os.path.join(directory, "**", "BENCH_*.json")
    for path in sorted(glob.glob(pattern, recursive=True)):
        if exclude and os.path.abspath(path).startswith(exclude):
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {path}: {e}")
            continue
        bench = doc.get("bench")
        if bench is None:
            # google-benchmark output (bench_micro) has a different shape;
            # its rows are tracked by name under the benchmark key.
            for row in doc.get("benchmarks", []):
                name = row.get("name")
                t = row.get("real_time")
                unit = row.get("time_unit", "ns")
                if name is None or t is None:
                    continue
                scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
                rows[("bench_micro", "google-benchmark", name)] = (
                    t * scale.get(unit, 1e-9)
                )
            continue
        for row in doc.get("rows", []):
            key = (bench, row.get("section", ""), row.get("label", ""))
            rows[key] = row.get("seconds", 0.0)
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with the previous run's BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed relative slowdown (0.30 = +30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore rows where either side is below this")
    args = parser.parse_args()

    fresh = load_rows(args.fresh, exclude=args.baseline)
    if not fresh:
        print(f"error: no BENCH_*.json found under {args.fresh}")
        return 2
    if not os.path.isdir(args.baseline):
        print(f"no baseline directory {args.baseline}; skipping trend check")
        return 0
    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"no baseline rows under {args.baseline}; skipping trend check")
        return 0

    regressions = []
    improved = 0
    compared = 0
    for key, fresh_s in sorted(fresh.items()):
        base_s = baseline.get(key)
        if base_s is None:
            continue
        compared += 1
        if fresh_s < base_s:
            improved += 1
        if fresh_s <= args.min_seconds or base_s <= args.min_seconds:
            continue
        if fresh_s > base_s * (1.0 + args.threshold):
            regressions.append((key, base_s, fresh_s))

    only_fresh = len(set(fresh) - set(baseline))
    only_base = len(set(baseline) - set(fresh))
    print(f"compared {compared} rows ({improved} faster, "
          f"{only_fresh} new, {only_base} removed)")
    if regressions:
        print(f"\nFAIL: {len(regressions)} rows regressed more than "
              f"{args.threshold:.0%}:")
        for (bench, section, label), base_s, fresh_s in regressions:
            print(f"  {bench} | {section} | {label}: "
                  f"{base_s:.4f}s -> {fresh_s:.4f}s "
                  f"({fresh_s / base_s - 1.0:+.0%})")
        return 1
    print("perf trend ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
