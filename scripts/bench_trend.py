#!/usr/bin/env python3
"""Perf-trend gate over the BENCH_*.json artifacts.

Compares every timing row of the fresh bench JSON files against the same
row in a baseline directory (the previous CI run's artifact) and fails on
large regressions:

    bench_trend.py --baseline prev/ --fresh . [--threshold 0.30]
                   [--min-seconds 0.005]

A row regresses when fresh > baseline * (1 + threshold) AND both timings
exceed --min-seconds (sub-5ms rows are timer noise on shared runners).
Rows are matched by (bench, section, label); rows present on only one
side are reported but never fail the gate (scenarios come and go).
A missing/empty baseline directory is a clean pass so the first run of a
new branch does not fail.

Rolling history: with --history-in (a directory holding the previous
run's bench_history.json artifact, searched recursively) and
--history-out, every run appends its own rows to the chain — capped at
the last MAX_HISTORY (20) runs — and re-uploads it, so the series
survives even though each CI run can only download artifacts, never
append to them.

When $GITHUB_STEP_SUMMARY is set (CI), the history renders as one
markdown series table per (bench, section) scenario — labels down,
runs across (oldest to newest), plus a Δ column for the newest step —
turning the two-point gate into a per-scenario timing dashboard. With no
history (first run, or --history-in unset) the old baseline/fresh table
is emitted instead. The >30% gate itself is unchanged.

Exit codes: 0 ok / baseline missing, 1 regression found, 2 usage error.
"""

import argparse
import glob
import json
import os
import sys


def load_rows(directory, exclude=None):
    """(bench, section, label) -> seconds for every BENCH_*.json below
    `directory` (searched recursively: artifact downloads may nest).
    Files under `exclude` are skipped, so --fresh may be the repo root
    even with the baseline checkout nested inside it."""
    rows = {}
    exclude = os.path.abspath(exclude) + os.sep if exclude else None
    pattern = os.path.join(directory, "**", "BENCH_*.json")
    for path in sorted(glob.glob(pattern, recursive=True)):
        if exclude and os.path.abspath(path).startswith(exclude):
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {path}: {e}")
            continue
        bench = doc.get("bench")
        if bench is None:
            # google-benchmark output (bench_micro) has a different shape;
            # its rows are tracked by name under the benchmark key.
            for row in doc.get("benchmarks", []):
                name = row.get("name")
                t = row.get("real_time")
                unit = row.get("time_unit", "ns")
                if name is None or t is None:
                    continue
                scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
                rows[("bench_micro", "google-benchmark", name)] = (
                    t * scale.get(unit, 1e-9)
                )
            continue
        for row in doc.get("rows", []):
            key = (bench, row.get("section", ""), row.get("label", ""))
            rows[key] = row.get("seconds", 0.0)
    return rows


MAX_HISTORY = 20


def key_to_str(key):
    return "|".join(key)


def str_to_key(text):
    parts = text.split("|", 2)
    while len(parts) < 3:
        parts.append("")
    return tuple(parts)


def load_history(directory):
    """Newest (largest) run chain from any bench_history.json below
    `directory`. Returns [] when none parses."""
    best = []
    pattern = os.path.join(directory, "**", "bench_history.json")
    for path in sorted(glob.glob(pattern, recursive=True)):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable history {path}: {e}")
            continue
        if doc.get("version") != 1:
            continue
        runs = doc.get("runs", [])
        if len(runs) > len(best):
            best = runs
    return best


def write_history(path, runs):
    try:
        with open(path, "w") as f:
            json.dump({"version": 1, "runs": runs[-MAX_HISTORY:]}, f,
                      indent=None, separators=(",", ":"))
            f.write("\n")
    except OSError as e:
        print(f"warning: could not write history {path}: {e}")


def format_seconds(seconds):
    if seconds is None:
        return "—"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def write_step_summary(fresh, baseline, threshold, min_seconds):
    """Appends one markdown table per (bench, section) scenario to
    $GITHUB_STEP_SUMMARY. No-op outside CI (env var unset)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    scenarios = {}
    for (bench, section, label), seconds in fresh.items():
        scenarios.setdefault((bench, section), []).append((label, seconds))
    lines = ["## Bench trend", ""]
    if not baseline:
        lines.append("_No baseline artifact — fresh timings only._")
        lines.append("")
    for (bench, section), rows in sorted(scenarios.items()):
        lines.append(f"### {bench} — {section or '(default)'}")
        lines.append("")
        lines.append("| label | baseline | fresh | Δ |")
        lines.append("| --- | ---: | ---: | ---: |")
        for label, seconds in sorted(rows):
            base_s = baseline.get((bench, section, label))
            if base_s is None:
                delta_cell = "new"
            elif base_s <= 0:
                delta_cell = "n/a"  # sub-resolution baseline timing
            else:
                delta = seconds / base_s - 1.0
                noisy = seconds <= min_seconds or base_s <= min_seconds
                flag = " ⚠" if not noisy and delta > threshold else ""
                delta_cell = f"{delta:+.0%}{flag}"
            lines.append(f"| {label} | {format_seconds(base_s)} "
                         f"| {format_seconds(seconds)} | {delta_cell} |")
        lines.append("")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"warning: could not write step summary: {e}")


def write_series_summary(runs, threshold, min_seconds):
    """Appends one markdown series table per (bench, section) scenario —
    labels down, runs across — to $GITHUB_STEP_SUMMARY. No-op outside CI."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    scenarios = {}
    for ri, run in enumerate(runs):
        for key_str, seconds in run.get("rows", {}).items():
            bench, section, label = str_to_key(key_str)
            series = scenarios.setdefault((bench, section), {}).setdefault(
                label, [None] * len(runs))
            series[ri] = seconds
    lines = ["## Bench trend", "",
             f"_Series over the last {len(runs)} runs "
             f"(oldest → newest; history cap {MAX_HISTORY})._", ""]
    run_labels = [str(run.get("label", f"run{ri}"))[:12]
                  for ri, run in enumerate(runs)]
    for (bench, section), rows in sorted(scenarios.items()):
        lines.append(f"### {bench} — {section or '(default)'}")
        lines.append("")
        lines.append("| label | " + " | ".join(run_labels) + " | Δ |")
        lines.append("| --- |" + " ---: |" * (len(runs) + 1))
        for label, series in sorted(rows.items()):
            cells = [format_seconds(s) for s in series]
            newest = series[-1]
            prev = next((s for s in reversed(series[:-1]) if s is not None),
                        None)
            if newest is None:
                delta_cell = "gone"
            elif prev is None:
                delta_cell = "new"
            elif prev <= 0:
                delta_cell = "n/a"
            else:
                delta = newest / prev - 1.0
                noisy = newest <= min_seconds or prev <= min_seconds
                flag = " ⚠" if not noisy and delta > threshold else ""
                delta_cell = f"{delta:+.0%}{flag}"
            lines.append(f"| {label} | " + " | ".join(cells) +
                         f" | {delta_cell} |")
        lines.append("")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"warning: could not write step summary: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with the previous run's BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed relative slowdown (0.30 = +30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore rows where either side is below this")
    parser.add_argument("--history-in", default=None,
                        help="directory with the previous bench_history.json")
    parser.add_argument("--history-out", default=None,
                        help="where to write the extended history chain")
    parser.add_argument("--run-label", default="fresh",
                        help="column label for this run (e.g. short sha)")
    args = parser.parse_args()

    fresh = load_rows(args.fresh, exclude=args.baseline)
    if not fresh:
        print(f"error: no BENCH_*.json found under {args.fresh}")
        return 2
    baseline = {}
    if os.path.isdir(args.baseline):
        baseline = load_rows(args.baseline)

    history = []
    if args.history_in and os.path.isdir(args.history_in):
        history = load_history(args.history_in)
    runs = (history + [{
        "label": args.run_label,
        "rows": {key_to_str(k): v for k, v in fresh.items()},
    }])[-MAX_HISTORY:]
    if args.history_out:
        write_history(args.history_out, runs)
        print(f"history: {len(runs)} runs -> {args.history_out}")

    if len(runs) >= 2:
        write_series_summary(runs, args.threshold, args.min_seconds)
    else:
        write_step_summary(fresh, baseline, args.threshold, args.min_seconds)
    if not baseline:
        print(f"no baseline rows under {args.baseline}; skipping trend check")
        return 0

    regressions = []
    improved = 0
    compared = 0
    for key, fresh_s in sorted(fresh.items()):
        base_s = baseline.get(key)
        if base_s is None:
            continue
        compared += 1
        if fresh_s < base_s:
            improved += 1
        if fresh_s <= args.min_seconds or base_s <= args.min_seconds:
            continue
        if fresh_s > base_s * (1.0 + args.threshold):
            regressions.append((key, base_s, fresh_s))

    only_fresh = len(set(fresh) - set(baseline))
    only_base = len(set(baseline) - set(fresh))
    print(f"compared {compared} rows ({improved} faster, "
          f"{only_fresh} new, {only_base} removed)")
    if regressions:
        print(f"\nFAIL: {len(regressions)} rows regressed more than "
              f"{args.threshold:.0%}:")
        for (bench, section, label), base_s, fresh_s in regressions:
            print(f"  {bench} | {section} | {label}: "
                  f"{base_s:.4f}s -> {fresh_s:.4f}s "
                  f"({fresh_s / base_s - 1.0:+.0%})")
        return 1
    print("perf trend ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
