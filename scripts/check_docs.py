#!/usr/bin/env python3
"""Docs-drift gate, run as the `docs_drift` CTest.

Two checks, both against the working tree:

1. Flag drift: every `--flag` a CLI binary prints in its --help flag
   reference (lines starting with two spaces and `--`) must appear in
   that binary's table section of docs/CLI.md, and every backticked
   `--flag` documented there must exist in the binary's --help. Adding,
   renaming, or dropping a flag without updating docs/CLI.md fails CI.

2. Link rot: every relative markdown link in README.md and docs/*.md
   must resolve to an existing file (anchors are stripped; absolute
   URLs are ignored).
"""

import argparse
import os
import re
import subprocess
import sys

HELP_FLAG_RE = re.compile(r"^  (--[a-z0-9-]+)\b", re.MULTILINE)
DOC_FLAG_RE = re.compile(r"`(--[a-z0-9-]+)`")
HEADING_RE = re.compile(r"^## (.+)$", re.MULTILINE)
BINARY_HEADING_RE = re.compile(r"^`([a-z0-9_]+)`$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def help_flags(binary):
    out = subprocess.run([binary, "--help"], capture_output=True, text=True,
                         timeout=60)
    if out.returncode != 0:
        raise SystemExit(f"{binary} --help exited {out.returncode}")
    return set(HELP_FLAG_RE.findall(out.stdout))


def doc_sections(cli_md_path):
    """Maps each `## \\`binary\\`` section of docs/CLI.md to the set of
    backticked --flags in its tables (exit-code rows reference flags
    too, so only `| --- |`-style table rows inside the section count)."""
    with open(cli_md_path, encoding="utf-8") as f:
        text = f.read()
    sections = {}
    headings = list(HEADING_RE.finditer(text))
    for i, match in enumerate(headings):
        binary = BINARY_HEADING_RE.match(match.group(1).strip())
        if binary is None:  # prose heading ("Exit codes", ...), not a CLI
            continue
        start = match.end()
        end = headings[i + 1].start() if i + 1 < len(headings) else len(text)
        flags = set()
        for line in text[start:end].splitlines():
            if line.startswith("|"):
                flags.update(DOC_FLAG_RE.findall(line))
        sections[binary.group(1)] = flags
    return sections


def check_flags(name, binary, documented, errors):
    actual = help_flags(binary)
    for flag in sorted(actual - documented):
        errors.append(f"{name}: {flag} is in --help but not in docs/CLI.md")
    for flag in sorted(documented - actual):
        errors.append(f"{name}: {flag} is in docs/CLI.md but not in --help")


def check_links(repo, errors):
    md_files = [os.path.join(repo, "README.md")]
    docs_dir = os.path.join(repo, "docs")
    if os.path.isdir(docs_dir):
        for entry in sorted(os.listdir(docs_dir)):
            if entry.endswith(".md"):
                md_files.append(os.path.join(docs_dir, entry))
    for md in md_files:
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if "://" in target or target.startswith(("#", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md, repo)
                errors.append(f"{rel}: broken link -> {target}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo", required=True)
    parser.add_argument("--cli", required=True,
                        help="path to the scpm_cli binary")
    parser.add_argument("--serve-cli", required=True,
                        help="path to the scpm_serve_cli binary")
    parser.add_argument("--dist-cli", required=True,
                        help="path to the scpm_dist_cli binary")
    args = parser.parse_args()

    errors = []
    sections = doc_sections(os.path.join(args.repo, "docs", "CLI.md"))
    for name in ("scpm_cli", "scpm_serve_cli", "scpm_dist_cli"):
        if name not in sections:
            errors.append(f"docs/CLI.md: missing section '## `{name}`'")
    check_flags("scpm_cli", args.cli, sections.get("scpm_cli", set()), errors)
    check_flags("scpm_serve_cli", args.serve_cli,
                sections.get("scpm_serve_cli", set()), errors)
    check_flags("scpm_dist_cli", args.dist_cli,
                sections.get("scpm_dist_cli", set()), errors)
    check_links(args.repo, errors)

    if errors:
        print("docs drift detected:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("docs in sync: CLI flag tables match --help; all relative "
          "markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
