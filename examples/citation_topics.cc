// Citation-network scenario (the paper's CiteSeer case study, §4.1.3).
//
// CiteSeer-like analogue: papers connected by citations, attributes are
// abstract terms. Shows how attribute sets (topics) that induce dense
// groups of related work are surfaced by eps and delta, and inspects one
// induced subgraph the way Figure 6 does (graph induced by a topic vs the
// pattern found inside it).
//
// Usage: citation_topics [scale]   (default scale 0.4)

#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/scpm.h"
#include "datasets/synthetic.h"
#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "nullmodel/expectation.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.4;
  std::cout << "Generating CiteSeer-like citation network (scale " << scale
            << ")...\n";
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::CiteSeerLikeConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  std::cout << "  " << graph.NumVertices() << " papers, "
            << graph.graph().NumEdges() << " citations, "
            << graph.NumAttributes() << " abstract terms\n";

  // Paper CiteSeer parameters: gamma=0.5, min_size=5.
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 5;
  options.min_support = 15;
  options.min_epsilon = 0.05;
  options.top_k = 3;

  scpm::Graph topology = graph.graph();
  scpm::MaxExpectationModel null_model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &null_model);
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  scpm::PrintTopAttributeSets(std::cout, graph, result->attribute_sets, 10);

  // Figure-6 style inspection of the best-delta attribute set.
  const auto by_delta = scpm::RankAttributeSets(
      result->attribute_sets, scpm::AttributeSetOrder::kByDelta);
  if (!by_delta.empty()) {
    const scpm::AttributeSetStats& best = by_delta.front();
    const scpm::VertexSet induced = graph.VerticesWithAll(best.attributes);
    scpm::Result<scpm::InducedSubgraph> sub =
        scpm::InducedSubgraph::Create(graph.graph(), induced);
    if (sub.ok()) {
      std::cout << "\nGraph induced by "
                << graph.FormatAttributeSet(best.attributes) << ": "
                << sub->NumVertices() << " vertices, "
                << sub->graph().NumEdges() << " edges, density "
                << scpm::EdgeDensity(sub->graph()) << "\n";
      std::cout << "Covered by dense subgraphs: " << best.covered << " of "
                << best.support << " (eps=" << best.epsilon << ")\n";
    }
    for (const auto& p : result->patterns) {
      if (p.attributes == best.attributes) {
        std::cout << "Pattern inside it: " << FormatPattern(graph, p)
                  << "\n";
        break;
      }
    }
  }
  return 0;
}
