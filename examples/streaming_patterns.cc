// Streaming quickstart: mine with the frontier engine and a JSONL sink.
//
// Where quickstart.cc materializes the whole result via ScpmMiner::Mine,
// this example drives the engine directly:
//   1. attach a JsonlSink — every attribute set is written as one JSON
//      line the moment it finalizes, so resident memory stays
//      O(frontier) no matter how large the output gets;
//   2. set an anytime budget (here an evaluation cap) — the engine cuts
//      at a deterministic frontier boundary and hands back a
//      serializable checkpoint;
//   3. Resume(checkpoint) until the lattice is exhausted — the union of
//      the segments' JSONL lines equals an uncut run's output exactly.
//
// A deadline (EngineBudget::deadline_ms) works the same way, except the
// cut boundary is picked by the clock: the quasi-clique searches poll a
// cancellation token, so even one long coverage search stops within a
// candidate's work of the deadline.

#include <iostream>
#include <sstream>

#include "core/engine.h"
#include "core/sink.h"
#include "datasets/paper_example.h"

int main() {
  const scpm::AttributedGraph graph = scpm::PaperExampleGraph();

  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 4;
  options.min_support = 3;
  options.min_epsilon = 0.5;
  options.top_k = 10;

  scpm::ScpmEngine engine(options);
  scpm::EngineBudget budget;
  budget.max_evaluations = 2;  // absurdly small: show several segments
  engine.set_budget(budget);

  scpm::JsonlSink sink(&std::cout, &graph);

  scpm::Result<scpm::MiningRun> run = engine.Run(graph, &sink);
  int segment = 1;
  while (run.ok() && !run->exhausted) {
    std::cerr << "segment " << segment << ": emitted " << run->emitted
              << " sets, " << run->frontier_entries
              << " frontier entries left; checkpoint is "
              << run->checkpoint.Serialize().size() << " bytes\n";
    // A real deployment writes checkpoint.Save(file) and resumes in a
    // later process; round-tripping through the serialization here
    // proves the same thing.
    scpm::Result<scpm::EngineCheckpoint> restored =
        scpm::EngineCheckpoint::Parse(run->checkpoint.Serialize());
    if (!restored.ok()) {
      std::cerr << "checkpoint parse failed: " << restored.status() << "\n";
      return 1;
    }
    run = engine.Resume(graph, *restored, &sink);
    ++segment;
  }
  if (!run.ok()) {
    std::cerr << "mining failed: " << run.status() << "\n";
    return 1;
  }
  std::cerr << "segment " << segment << ": exhausted (emitted "
            << run->emitted << " sets, " << run->patterns_emitted
            << " patterns)\n";
  return 0;
}
