// Quickstart: build a small attributed graph, mine structural correlation
// patterns, print the results.
//
// This walks the paper's Figure-1 running example end to end:
//   1. build an AttributedGraph (vertices, edges, named attributes);
//   2. configure ScpmOptions (quasi-clique gamma / min_size, sigma_min,
//      eps_min, top-k);
//   3. run ScpmMiner and inspect attribute-set statistics and patterns.

#include <iostream>

#include "core/report.h"
#include "core/scpm.h"
#include "datasets/paper_example.h"

int main() {
  // The paper's Figure-1 graph: 11 authors, attributes A..E.
  const scpm::AttributedGraph graph = scpm::PaperExampleGraph();
  std::cout << "Graph: " << graph.NumVertices() << " vertices, "
            << graph.graph().NumEdges() << " edges, "
            << graph.NumAttributes() << " attributes\n\n";

  // Paper parameters for Table 1.
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.6;  // quasi-clique density threshold
  options.quasi_clique.min_size = 4;
  options.min_support = 3;           // sigma_min
  options.min_epsilon = 0.5;         // eps_min
  options.top_k = 10;

  scpm::ScpmMiner miner(options);
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "Attribute sets passing eps_min = " << options.min_epsilon
            << ":\n";
  for (const scpm::AttributeSetStats& s : result->attribute_sets) {
    std::cout << "  " << scpm::FormatStatsRow(graph, s) << "\n";
  }

  std::cout << "\nStructural correlation patterns (paper Table 1; vertex "
               "ids are 0-based, paper ids are +1):\n";
  scpm::PrintPatternTable(std::cout, graph, *result);

  std::cout << "\nSearch effort: "
            << result->counters.attribute_sets_evaluated
            << " attribute sets evaluated, "
            << result->counters.coverage_candidates
            << " quasi-clique candidates processed\n";
  return 0;
}
