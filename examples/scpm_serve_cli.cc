// scpm_serve_cli: long-lived SCPM query server over a Unix domain socket.
//
// Loads an attributed graph once, then serves concurrent mining queries
// through the newline-delimited JSON protocol documented in
// docs/SERVER.md (ops: submit / status / cancel / stats / reload /
// shutdown). Run `scpm_serve_cli --help` for the flag reference; see
// examples/server_client.py for a minimal client.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "core/ckpt_codec.h"
#include "graph/io.h"
#include "server/server.h"
#include "util/hybrid_set.h"
#include "util/simd_ops.h"

namespace {

void Usage() {
  std::cerr << "usage: scpm_serve_cli <edges.txt> <attrs.txt> --socket PATH "
               "[--threads T] [--max-concurrent C] [--queue-depth Q] "
               "[--memo-mb MB] [--memo-shards S] [--slice-ms MS] "
               "[--slice-evals N] [--default-deadline-ms MS] "
               "[--state-dir PATH] [--checkpoint-interval-ms MS] "
               "[--ckpt-format text|binary] [--dist-workers W] "
               "[--simd 0|1] [--chunked 0|1]\n"
               "run scpm_serve_cli --help for the full flag reference\n";
}

/// SIGTERM/SIGINT self-pipe: the handler only writes a byte; a waiter
/// thread does the actual (mutex-taking) drain.
int g_signal_pipe[2] = {-1, -1};
volatile std::sig_atomic_t g_signaled = 0;

void OnSignal(int) {
  g_signaled = 1;
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

// Contract with scripts/check_docs.py: the "--flag" lines below must
// match the scpm_serve_cli table in docs/CLI.md (ctest docs_drift gate).
void Help() {
  std::cout <<
      "scpm_serve_cli: long-lived SCPM query server on a Unix domain socket\n"
      "\n"
      "usage: scpm_serve_cli <edges.txt> <attrs.txt> --socket PATH [options]\n"
      "\n"
      "  edges.txt : one \"u v\" edge per line ('#' comments allowed)\n"
      "  attrs.txt : one \"v name1 name2 ...\" line per vertex\n"
      "\n"
      "The server loads the graph once, then accepts newline-delimited\n"
      "JSON requests (docs/SERVER.md): submit / status / cancel / stats /\n"
      "reload / shutdown. Per-query mining options travel in the submit\n"
      "request, not on this command line.\n"
      "\n"
      "Options (defaults in parentheses):\n"
      "  --socket PATH      Unix socket path to listen on (required)\n"
      "  --threads T        shared worker-pool threads mining for all\n"
      "                     queries together (4)\n"
      "  --max-concurrent C queries mining at once; admitted queries\n"
      "                     beyond C wait in the queue (2)\n"
      "  --queue-depth Q    waiting queries; a submit past this depth is\n"
      "                     rejected with code resource-exhausted (16)\n"
      "  --memo-mb MB       cross-query evaluation memo budget in MiB;\n"
      "                     0 disables the memo (64)\n"
      "  --memo-shards S    memo mutex stripes (16)\n"
      "  --slice-ms MS      preemption: wall-clock budget per driver\n"
      "                     slice; a cut query re-queues round-robin;\n"
      "                     0 = run-to-completion (0)\n"
      "  --slice-evals N    preemption: evaluations per driver slice;\n"
      "                     0 = unbounded (0)\n"
      "  --default-deadline-ms MS  wall-clock budget applied to queries\n"
      "                     that specify no deadline_ms; 0 = none (0)\n"
      "  --state-dir PATH   durable state directory: queries journal on\n"
      "                     admit, snapshot periodically, and are resumed\n"
      "                     by the next server started on the same\n"
      "                     directory after a crash (off)\n"
      "  --checkpoint-interval-ms MS  how often a running query's\n"
      "                     snapshot is persisted under --state-dir (1000)\n"
      "  --ckpt-format V    encoding for persisted query snapshots:\n"
      "                     binary (compact interned v2) or text (v1);\n"
      "                     recovery auto-detects, so a server may be\n"
      "                     restarted with either setting (binary)\n"
      "  --dist-workers W   mine budgetless queries as one distributed\n"
      "                     job across W forked worker processes with\n"
      "                     leased, fault-tolerant batches (docs/DIST.md);\n"
      "                     0 = off (0)\n"
      "  --simd B           process-wide SIMD word-kernel dispatch; 0\n"
      "                     pins the scalar path (1)\n"
      "  --chunked B        process-wide chunked mid-density sets (1)\n"
      "  --help             print this reference and exit 0\n"
      "\n"
      "SIGTERM/SIGINT drain cleanly: admissions stop, running queries are\n"
      "suspended and (with --state-dir) their snapshots persisted, then\n"
      "the server exits 0.\n"
      "\n"
      "Exit codes: 0 = clean shutdown (shutdown op received or signal\n"
      "drain), 1 = runtime error, 2 = usage error.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      Help();
      return 0;
    }
  }
  if (argc < 3) {
    Usage();
    return 2;
  }
  scpm::ServerOptions options;
  std::string socket_path;

  for (int i = 3; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "flag " << flag << " is missing its value\n";
      Usage();
      return 2;
    }
    const char* value = argv[i + 1];
    if (flag == "--socket") {
      socket_path = value;
    } else if (flag == "--threads") {
      options.threads = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--max-concurrent") {
      options.max_concurrent = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--queue-depth") {
      options.queue_depth = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--memo-mb") {
      options.memo.max_bytes =
          static_cast<std::size_t>(std::atoll(value)) << 20;
    } else if (flag == "--memo-shards") {
      options.memo.num_shards = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--slice-ms") {
      options.slice_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--slice-evals") {
      options.slice_evals = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--default-deadline-ms") {
      options.default_deadline_ms =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--state-dir") {
      options.state_dir = value;
    } else if (flag == "--checkpoint-interval-ms") {
      options.checkpoint_interval_ms =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--ckpt-format") {
      scpm::Result<scpm::CheckpointFormat> parsed =
          scpm::ParseCheckpointFormat(value);
      if (!parsed.ok()) {
        std::cerr << "unknown --ckpt-format: " << value
                  << " (want text or binary)\n";
        Usage();
        return 2;
      }
      options.ckpt_format = *parsed;
    } else if (flag == "--dist-workers") {
      options.dist_workers = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--simd") {
      scpm::SetSimdDispatch(std::atoi(value) != 0);
    } else if (flag == "--chunked") {
      scpm::HybridVertexSet::SetChunkedEnabled(std::atoi(value) != 0);
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      Usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "--socket is required\n";
    Usage();
    return 2;
  }
  if (!options.state_dir.empty()) {
    // Probe the state directory up front: an uncreatable path would
    // otherwise surface only after the graph loaded and the socket
    // bound, when clients may already be connecting to a server that
    // cannot honor its durability contract.
    scpm::Result<std::unique_ptr<scpm::StateStore>> probe =
        scpm::StateStore::Open(options.state_dir);
    if (!probe.ok()) {
      std::cerr << "--state-dir " << options.state_dir
                << " is unusable: " << probe.status() << "\n";
      Usage();
      return 2;
    }
  }

  scpm::Result<scpm::AttributedGraph> loaded =
      scpm::LoadAttributedGraph(argv[1], argv[2]);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status() << "\n";
    return 1;
  }
  auto graph = std::make_shared<const scpm::AttributedGraph>(
      std::move(loaded).value());
  std::cerr << "loaded " << graph->NumVertices() << " vertices, "
            << graph->graph().NumEdges() << " edges, "
            << graph->NumAttributes() << " attributes\n";

  scpm::ScpmServer server(std::move(graph), options);
  // A wire "reload" with no paths re-reads the files this server was
  // started from.
  server.set_reload_paths(argv[1], argv[2]);
  // Crash recovery before the drivers start: replay the journal, resume
  // what the previous process left behind.
  const scpm::Status recovered = server.Recover();
  if (!recovered.ok()) {
    std::cerr << "recovery failed: " << recovered << "\n";
    return 1;
  }
  for (const std::string& warning : server.recovery_warnings()) {
    std::cerr << "recovery: " << warning << "\n";
  }
  if (server.recovered_queries() > 0) {
    std::cerr << "recovered " << server.recovered_queries()
              << " interrupted queries\n";
  }
  server.Start();

  // SIGTERM/SIGINT = clean drain, not an abort: the handler pokes the
  // self-pipe, the drainer thread stops admissions, suspends running
  // queries, persists their snapshots, and wakes Serve().
  std::thread drainer;
  if (::pipe(g_signal_pipe) == 0) {
    struct sigaction action{};
    action.sa_handler = OnSignal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    drainer = std::thread([&server] {
      char byte;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      if (g_signaled != 0) {
        std::cerr << "signal received: draining\n";
        server.Drain();
      }
    });
  }
  std::cerr << "serving on " << socket_path << " (threads="
            << options.threads << " max_concurrent=" << options.max_concurrent
            << " queue_depth=" << options.queue_depth << " memo="
            << (options.memo.max_bytes >> 20) << "MiB slice_ms="
            << options.slice_ms << " slice_evals=" << options.slice_evals
            << ")\n";
  scpm::Status served = server.Serve(socket_path);
  if (drainer.joinable()) {
    // Release the drainer if no signal arrived (clean shutdown op);
    // Drain() after Shutdown() is a no-op.
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
    drainer.join();
  }
  if (!served.ok()) {
    std::cerr << "serve failed: " << served << "\n";
    return 1;
  }
  std::cerr << (g_signaled != 0 ? "drained cleanly\n" : "shut down cleanly\n");
  return 0;
}
