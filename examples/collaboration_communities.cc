// Collaboration-network scenario (the paper's DBLP case study, §4.1.1).
//
// Generates the DBLP-like synthetic analogue (power-law co-authorship
// background + planted research groups sharing title-term topics), then
// mines structural correlation patterns and prints the paper's Table-2
// style report: top attribute sets by support, by eps, and by delta_lb.
//
// Usage: collaboration_communities [scale]   (default scale 0.5)

#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/scpm.h"
#include "datasets/synthetic.h"
#include "graph/metrics.h"
#include "nullmodel/expectation.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::cout << "Generating DBLP-like collaboration network (scale " << scale
            << ")...\n";
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::DblpLikeConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  std::cout << "  " << graph.NumVertices() << " authors, "
            << graph.graph().NumEdges() << " co-authorships, "
            << graph.NumAttributes() << " title terms, avg degree "
            << scpm::AverageDegree(graph.graph()) << "\n";

  // Paper DBLP parameters (scaled): gamma=0.5, min_size=10; we lower
  // min_size with the graph scale so communities remain findable.
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 8;
  options.min_support = 20;
  options.min_epsilon = 0.05;
  options.top_k = 5;

  scpm::Graph topology = graph.graph();
  scpm::MaxExpectationModel null_model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &null_model);

  scpm::WallTimer timer;
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Mined " << result->attribute_sets.size()
            << " attribute sets and " << result->patterns.size()
            << " patterns in " << timer.ElapsedSeconds() << " s\n\n";

  scpm::PrintTopAttributeSets(std::cout, graph, result->attribute_sets, 10);

  std::cout << "\nLargest structural correlation patterns:\n";
  for (std::size_t i = 0; i < result->patterns.size() && i < 5; ++i) {
    std::cout << "  " << FormatPattern(graph, result->patterns[i]) << "\n";
  }
  return 0;
}
