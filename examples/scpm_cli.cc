// scpm_cli: mine structural correlation patterns from files on disk.
//
// Usage:
//   scpm_cli <edges.txt> <attrs.txt> [options]
//
//   edges.txt : one "u v" edge per line ('#' comments allowed)
//   attrs.txt : one "v name1 name2 ..." line per vertex
//
// Options (all optional, shown with defaults):
//   --gamma 0.5        quasi-clique density threshold (0, 1]
//   --min-size 5       minimum quasi-clique size
//   --sigma-min 10     minimum attribute-set support
//   --eps-min 0.1      minimum structural correlation
//   --delta-min 0      minimum normalized structural correlation
//                      (enables the max-exp null model when > 0)
//   --top-k 5          patterns reported per attribute set
//   --order dfs|bfs    candidate search order
//   --threads 1        worker threads (output is identical for any count)
//   --batch-grain 256  tidset mass per evaluation task (0 = one per task)
//   --intra-min 512    |G(S)| at which one coverage search decomposes
//                      into parallel branch tasks (0 = never)
//   --intra-depth 12   decomposition depth of the intra-search tasks
//   --hybrid 1         hybrid sparse/chunked/dense vertex-set storage
//                      (0 = pure sorted-vector kernels; output is
//                      identical)
//   --simd 1           SIMD word-kernel dispatch (0 pins the scalar
//                      path; output is identical — A/B escape hatch)
//   --chunked 1        roaring-style chunked mid-density representation
//                      (0 = two-way sparse/dense rule; output is
//                      identical)
//   --top-n 10         rows printed per ranking table

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/report.h"
#include "core/scpm.h"
#include "core/statistics.h"
#include "graph/io.h"
#include "nullmodel/expectation.h"
#include "util/hybrid_set.h"
#include "util/simd_ops.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::cerr << "usage: scpm_cli <edges.txt> <attrs.txt> [--gamma G] "
               "[--min-size S] [--sigma-min N] [--eps-min E] "
               "[--delta-min D] [--top-k K] [--order dfs|bfs] "
               "[--threads T] [--batch-grain W] [--intra-min U] "
               "[--intra-depth D] [--hybrid 0|1] [--simd 0|1] "
               "[--chunked 0|1] [--top-n N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 5;
  options.min_support = 10;
  options.min_epsilon = 0.1;
  options.top_k = 5;
  std::size_t top_n = 10;

  for (int i = 3; i < argc; i += 2) {
    if (i + 1 >= argc) {
      Usage();
      return 2;
    }
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--gamma") {
      options.quasi_clique.gamma = std::atof(value);
    } else if (flag == "--min-size") {
      options.quasi_clique.min_size =
          static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--sigma-min") {
      options.min_support = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--eps-min") {
      options.min_epsilon = std::atof(value);
    } else if (flag == "--delta-min") {
      options.min_delta = std::atof(value);
    } else if (flag == "--top-k") {
      options.top_k = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--order") {
      options.search_order = std::strcmp(value, "bfs") == 0
                                 ? scpm::SearchOrder::kBfs
                                 : scpm::SearchOrder::kDfs;
    } else if (flag == "--threads") {
      options.num_threads = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--batch-grain") {
      options.eval_batch_grain = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--intra-min") {
      options.intra_search_min_universe =
          static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--intra-depth") {
      options.intra_search_spawn_depth =
          static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--hybrid") {
      options.use_hybrid_sets = std::atoi(value) != 0;
    } else if (flag == "--simd") {
      scpm::SetSimdDispatch(std::atoi(value) != 0);
    } else if (flag == "--chunked") {
      scpm::HybridVertexSet::SetChunkedEnabled(std::atoi(value) != 0);
    } else if (flag == "--top-n") {
      top_n = static_cast<std::size_t>(std::atoll(value));
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      Usage();
      return 2;
    }
  }

  scpm::Result<scpm::AttributedGraph> graph =
      scpm::LoadAttributedGraph(argv[1], argv[2]);
  if (!graph.ok()) {
    std::cerr << "load failed: " << graph.status() << "\n";
    return 1;
  }
  std::cout << "loaded " << graph->NumVertices() << " vertices, "
            << graph->graph().NumEdges() << " edges, "
            << graph->NumAttributes() << " attributes\n";

  scpm::Graph topology = graph->graph();
  scpm::MaxExpectationModel null_model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &null_model);

  scpm::WallTimer timer;
  scpm::Result<scpm::ScpmResult> result = miner.Mine(*graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  // The dispatch path and representation histogram ride on the counters
  // line so bench JSON rows scraped from it are attributable to a kernel
  // variant.
  std::cout << "mined " << result->attribute_sets.size()
            << " attribute sets / " << result->patterns.size()
            << " patterns in " << timer.ElapsedSeconds() << " s\n"
            << "counters: " << scpm::FormatScpmCounters(result->counters)
            << " simd=" << scpm::SimdDispatchName() << " reprs{dense="
            << result->counters.dense_conversions
            << " chunked=" << result->counters.chunked_conversions << "}"
            << "\n\n";
  scpm::PrintTopAttributeSets(std::cout, *graph, result->attribute_sets,
                              top_n);
  std::cout << "\n";
  scpm::PrintPatternTable(std::cout, *graph, *result);
  return 0;
}
