// scpm_cli: mine structural correlation patterns from files on disk.
//
// Usage:
//   scpm_cli <edges.txt> <attrs.txt> [options]
//
//   edges.txt : one "u v" edge per line ('#' comments allowed)
//   attrs.txt : one "v name1 name2 ..." line per vertex
//
// Options (all optional, shown with defaults):
//   --gamma 0.5        quasi-clique density threshold (0, 1]
//   --min-size 5       minimum quasi-clique size
//   --sigma-min 10     minimum attribute-set support
//   --eps-min 0.1      minimum structural correlation
//   --delta-min 0      minimum normalized structural correlation
//                      (enables the max-exp null model when > 0)
//   --top-k 5          patterns reported per attribute set
//   --scope topk       topk (SCPM) or maximal (SCORP: every maximal
//                      pattern per attribute set)
//   --order dfs|bfs    candidate search order
//   --threads 1        worker threads (output is identical for any count)
//   --batch-grain 256  tidset mass per evaluation task (0 = one per task)
//   --intra-min 512    |G(S)| at which one coverage search decomposes
//                      into parallel branch tasks (0 = never)
//   --intra-depth 12   decomposition depth of the intra-search tasks
//   --hybrid 1         hybrid sparse/chunked/dense vertex-set storage
//                      (0 = pure sorted-vector kernels; output is
//                      identical)
//   --simd 1           SIMD word-kernel dispatch (0 pins the scalar
//                      path; output is identical — A/B escape hatch)
//   --chunked 1        roaring-style chunked mid-density representation
//                      (0 = two-way sparse/dense rule; output is
//                      identical)
//   --top-n 10         rows printed per ranking table
//
// Streaming / anytime options (the frontier engine):
//   --sink accumulate  accumulate (full result + ranking tables, memory
//                      O(output)) or jsonl (one JSON line per attribute
//                      set the moment it finalizes, memory O(frontier))
//   --out FILE         jsonl destination (default: stdout)
//   --deadline-ms 0    wall-clock budget (0 = none)
//   --max-evals 0      evaluation budget, cut at a deterministic
//                      frontier boundary (0 = none)
//   --max-patterns 0   emitted-pattern budget, same cut discipline
//   --checkpoint FILE  where to write the frontier checkpoint when a
//                      budget cuts the run
//   --ckpt-format V    checkpoint encoding: binary (default) or text
//   --resume FILE      continue from a previous run's checkpoint (same
//                      graph and thresholds required; format
//                      auto-detected)
//
// Exit codes: 0 = lattice exhausted, 3 = budget cut the run (checkpoint
// written if --checkpoint was given), 1 = runtime error, 2 = usage error.
// Unknown flags and flags missing their value are usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/ckpt_codec.h"
#include "core/engine.h"
#include "core/report.h"
#include "core/request.h"
#include "core/scpm.h"
#include "core/statistics.h"
#include "graph/io.h"
#include "nullmodel/expectation.h"
#include "util/simd_ops.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::cerr << "usage: scpm_cli <edges.txt> <attrs.txt> [--gamma G] "
               "[--min-size S] [--sigma-min N] [--eps-min E] "
               "[--delta-min D] [--top-k K] [--scope topk|maximal] "
               "[--order dfs|bfs] [--threads T] [--batch-grain W] "
               "[--intra-min U] [--intra-depth D] [--hybrid 0|1] "
               "[--simd 0|1] [--chunked 0|1] [--top-n N] "
               "[--sink accumulate|jsonl] [--out FILE] [--deadline-ms MS] "
               "[--max-evals N] [--max-patterns N] [--checkpoint FILE] "
               "[--checkpoint-interval-ms MS] [--ckpt-format text|binary] "
               "[--resume FILE]\n"
               "run scpm_cli --help for the full flag reference\n";
}

// The flag table below is contract: scripts/check_docs.py diffs the
// "--flag" lines against docs/CLI.md, so a new flag must land in both
// (the ctest docs_drift gate fails otherwise).
void Help() {
  std::cout <<
      "scpm_cli: mine structural correlation patterns from files on disk\n"
      "\n"
      "usage: scpm_cli <edges.txt> <attrs.txt> [options]\n"
      "\n"
      "  edges.txt : one \"u v\" edge per line ('#' comments allowed)\n"
      "  attrs.txt : one \"v name1 name2 ...\" line per vertex\n"
      "\n"
      "Mining options (defaults in parentheses):\n"
      "  --gamma G          quasi-clique density threshold in (0, 1] (0.5)\n"
      "  --min-size S       minimum quasi-clique size (5)\n"
      "  --sigma-min N      minimum attribute-set support (10)\n"
      "  --eps-min E        minimum structural correlation (0.1)\n"
      "  --delta-min D      minimum normalized structural correlation;\n"
      "                     > 0 enables the max-exp null model (0)\n"
      "  --top-k K          patterns reported per attribute set (5)\n"
      "  --scope V          topk (SCPM) or maximal (SCORP) (topk)\n"
      "  --order V          dfs or bfs candidate search order (dfs)\n"
      "\n"
      "Performance options (never change what is mined):\n"
      "  --threads T        worker threads (1)\n"
      "  --batch-grain W    tidset mass per evaluation task; 0 = one\n"
      "                     evaluation per task (256)\n"
      "  --intra-min U      |G(S)| at which one coverage search decomposes\n"
      "                     into parallel branch tasks; 0 = never (512)\n"
      "  --intra-depth D    decomposition depth of intra-search tasks (12)\n"
      "  --hybrid B         hybrid sparse/chunked/dense vertex sets; 0 =\n"
      "                     pure sorted-vector kernels (1)\n"
      "  --simd B           SIMD word-kernel dispatch; 0 pins the scalar\n"
      "                     path (1)\n"
      "  --chunked B        roaring-style chunked mid-density sets; 0 =\n"
      "                     two-way sparse/dense rule (1)\n"
      "\n"
      "Output options:\n"
      "  --top-n N          rows printed per ranking table (10)\n"
      "  --sink V           accumulate (full result, O(output) memory) or\n"
      "                     jsonl (streaming, O(frontier)) (accumulate)\n"
      "  --out FILE         jsonl destination (stdout)\n"
      "\n"
      "Budget / anytime options (frontier engine):\n"
      "  --deadline-ms MS   wall-clock budget; 0 = none (0)\n"
      "  --max-evals N      evaluation budget, cut at a deterministic\n"
      "                     frontier boundary; 0 = none (0)\n"
      "  --max-patterns N   emitted-pattern budget, same discipline (0)\n"
      "  --checkpoint FILE  write the frontier checkpoint on a budget cut\n"
      "  --checkpoint-interval-ms MS  also rewrite --checkpoint this often\n"
      "                     while mining (atomic tmp+rename replace, so a\n"
      "                     crash leaves the previous snapshot); 0 = only\n"
      "                     on a budget cut (0)\n"
      "  --ckpt-format V    encoding for written checkpoints: binary (the\n"
      "                     compact interned v2 form) or text (the v1\n"
      "                     whitespace form); --resume auto-detects, so\n"
      "                     either kind of file resumes (binary)\n"
      "  --resume FILE      continue from a previous run's checkpoint\n"
      "\n"
      "Other:\n"
      "  --help             print this reference and exit 0\n"
      "\n"
      "Exit codes: 0 = lattice exhausted, 1 = runtime error, 2 = usage\n"
      "error, 3 = budget cut the run (checkpoint written if --checkpoint\n"
      "was given).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      Help();
      return 0;
    }
  }
  if (argc < 3) {
    Usage();
    return 2;
  }
  // The CLI is just one more front door onto core/request.h: every flag
  // lands in this MiningRequest and ExecuteRequest() does the mining.
  scpm::MiningRequest request;
  scpm::ScpmOptions& options = request.options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 5;
  options.min_support = 10;
  options.min_epsilon = 0.1;
  options.top_k = 5;
  scpm::EngineBudget& budget = request.budget;
  std::size_t top_n = 10;
  std::string out_path;
  std::string checkpoint_path;
  scpm::CheckpointFormat ckpt_format = scpm::CheckpointFormat::kBinary;
  std::uint64_t checkpoint_interval_ms = 0;
  std::string resume_path;

  for (int i = 3; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "flag " << flag << " is missing its value\n";
      Usage();
      return 2;
    }
    const char* value = argv[i + 1];
    if (flag == "--gamma") {
      options.quasi_clique.gamma = std::atof(value);
    } else if (flag == "--min-size") {
      options.quasi_clique.min_size =
          static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--sigma-min") {
      options.min_support = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--eps-min") {
      options.min_epsilon = std::atof(value);
    } else if (flag == "--delta-min") {
      options.min_delta = std::atof(value);
    } else if (flag == "--top-k") {
      options.top_k = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--scope") {
      if (std::strcmp(value, "maximal") == 0) {
        options.pattern_scope = scpm::PatternScope::kAllMaximal;
      } else if (std::strcmp(value, "topk") == 0) {
        options.pattern_scope = scpm::PatternScope::kTopK;
      } else {
        std::cerr << "unknown --scope: " << value << "\n";
        Usage();
        return 2;
      }
    } else if (flag == "--order") {
      options.search_order = std::strcmp(value, "bfs") == 0
                                 ? scpm::SearchOrder::kBfs
                                 : scpm::SearchOrder::kDfs;
    } else if (flag == "--threads") {
      options.num_threads = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--batch-grain") {
      options.eval_batch_grain = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--intra-min") {
      options.intra_search_min_universe =
          static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--intra-depth") {
      options.intra_search_spawn_depth =
          static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--hybrid") {
      options.use_hybrid_sets = std::atoi(value) != 0;
    } else if (flag == "--simd") {
      request.simd = std::atoi(value) != 0;
    } else if (flag == "--chunked") {
      request.chunked = std::atoi(value) != 0;
    } else if (flag == "--top-n") {
      top_n = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--sink") {
      if (std::strcmp(value, "accumulate") == 0) {
        request.sink = scpm::MiningRequest::Sink::kAccumulate;
      } else if (std::strcmp(value, "jsonl") == 0) {
        request.sink = scpm::MiningRequest::Sink::kJsonl;
      } else {
        std::cerr << "unknown --sink: " << value << "\n";
        Usage();
        return 2;
      }
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--deadline-ms") {
      budget.deadline_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--max-evals") {
      budget.max_evaluations = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--max-patterns") {
      budget.max_patterns = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--checkpoint") {
      checkpoint_path = value;
    } else if (flag == "--ckpt-format") {
      scpm::Result<scpm::CheckpointFormat> parsed =
          scpm::ParseCheckpointFormat(value);
      if (!parsed.ok()) {
        std::cerr << "unknown --ckpt-format: " << value
                  << " (want text or binary)\n";
        Usage();
        return 2;
      }
      ckpt_format = *parsed;
    } else if (flag == "--checkpoint-interval-ms") {
      checkpoint_interval_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--resume") {
      resume_path = value;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      Usage();
      return 2;
    }
  }

  // With --sink jsonl and no --out, stdout IS the JSONL stream; every
  // informational line moves to stderr so consumers can pipe the output
  // straight into a JSON parser.
  const bool jsonl = request.sink == scpm::MiningRequest::Sink::kJsonl;
  const bool jsonl_on_stdout = jsonl && out_path.empty();
  std::ostream& info = jsonl_on_stdout ? std::cerr : std::cout;
  if (jsonl_on_stdout) {
    request.jsonl_stream = &std::cout;
  } else {
    request.jsonl_path = out_path;
  }
  if (checkpoint_interval_ms != 0) {
    if (checkpoint_path.empty()) {
      std::cerr << "--checkpoint-interval-ms requires --checkpoint\n";
      Usage();
      return 2;
    }
    // Periodic durability: between waves, replace the checkpoint file
    // atomically (write-to-temp + rename) so a kill at any moment
    // leaves either the previous or the new complete snapshot.
    request.checkpoint_interval_ms = checkpoint_interval_ms;
    request.on_checkpoint = [&checkpoint_path, ckpt_format](
                                const scpm::EngineCheckpoint& cp,
                                const scpm::EngineProgress&) {
      const std::string tmp = checkpoint_path + ".tmp";
      std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
      if (!out.is_open() || !cp.Save(out, ckpt_format).ok()) return;
      out.close();
      if (!out.good() ||
          std::rename(tmp.c_str(), checkpoint_path.c_str()) != 0) {
        std::remove(tmp.c_str());
      }
    };
  }
  request.ApplyProcessToggles();
  scpm::Status valid = request.Validate();
  if (!valid.ok()) {
    std::cerr << "invalid request: " << valid << "\n";
    Usage();
    return 2;
  }

  scpm::Result<scpm::AttributedGraph> graph =
      scpm::LoadAttributedGraph(argv[1], argv[2]);
  if (!graph.ok()) {
    std::cerr << "load failed: " << graph.status() << "\n";
    return 1;
  }
  info << "loaded " << graph->NumVertices() << " vertices, "
       << graph->graph().NumEdges() << " edges, "
       << graph->NumAttributes() << " attributes\n";

  // The null model exists to normalize eps into delta; without a
  // --delta-min threshold it only adds columns (and its per-support
  // tables cost real memory on large graphs), so it is built exactly
  // when the docs above say it is: --delta-min > 0.
  std::unique_ptr<scpm::MaxExpectationModel> null_model;
  if (options.min_delta > 0.0) {
    null_model = std::make_unique<scpm::MaxExpectationModel>(
        graph->graph(), options.quasi_clique);
  }

  scpm::EngineCheckpoint checkpoint;
  bool resuming = false;
  if (!resume_path.empty()) {
    std::ifstream in(resume_path);
    if (!in.is_open()) {
      std::cerr << "mining failed: cannot open checkpoint: " << resume_path
                << "\n";
      return 1;
    }
    scpm::Result<scpm::EngineCheckpoint> loaded =
        scpm::EngineCheckpoint::Load(in);
    if (!loaded.ok()) {
      std::cerr << "mining failed: " << loaded.status() << "\n";
      return 1;
    }
    checkpoint = std::move(loaded).value();
    resuming = true;
  }

  scpm::WallTimer timer;
  scpm::Result<scpm::MiningResponse> response = scpm::ExecuteRequest(
      *graph, request, null_model.get(), resuming ? &checkpoint : nullptr);
  if (!response.ok()) {
    std::cerr << "mining failed: " << response.status() << "\n";
    return 1;
  }
  const scpm::MiningRun& run = response->run;

  // The dispatch path and representation histogram ride on the counters
  // line so bench JSON rows scraped from it are attributable to a kernel
  // variant.
  info << "mined " << run.emitted << " attribute sets / "
       << run.patterns_emitted << " patterns in " << timer.ElapsedSeconds()
       << " s (" << (run.exhausted ? "exhausted" : "budget cut") << ")\n"
       << "counters: " << scpm::FormatScpmCounters(run.counters)
       << " simd=" << scpm::SimdDispatchName() << " reprs{dense="
       << run.counters.dense_conversions
       << " chunked=" << run.counters.chunked_conversions << "}"
       << "\n\n";

  if (!run.exhausted) {
    info << "budget cut the run with " << run.frontier_entries
         << " frontier entries left\n";
    if (!checkpoint_path.empty()) {
      std::ofstream out(checkpoint_path, std::ios::trunc | std::ios::binary);
      scpm::Status saved = out.is_open()
                               ? run.checkpoint.Save(out, ckpt_format)
                               : scpm::Status::IoError("cannot open " +
                                                       checkpoint_path);
      if (!saved.ok()) {
        std::cerr << "checkpoint save failed: " << saved << "\n";
        return 1;
      }
      info << "checkpoint written to " << checkpoint_path
           << " (resume with --resume " << checkpoint_path << ")\n";
    }
  }

  if (request.sink == scpm::MiningRequest::Sink::kAccumulate) {
    scpm::PrintTopAttributeSets(std::cout, *graph,
                                response->result.attribute_sets, top_n);
    std::cout << "\n";
    scpm::PrintPatternTable(std::cout, *graph, response->result);
  }
  return run.exhausted ? 0 : 3;
}
