#!/usr/bin/env python3
"""Minimal scpm_serve_cli client: two concurrent budgeted queries.

Start the server on any graph, then point this script at its socket:

    ./build/scpm_serve_cli graph.edges graph.attrs --socket /tmp/scpm.sock
    python3 examples/server_client.py /tmp/scpm.sock

Each query runs on its own connection with its own thresholds and a
wall-clock budget (deadline_ms), so a graph too big to mine exhaustively
still answers promptly with exhausted=false. The wire protocol is
newline-delimited JSON (docs/SERVER.md); this file is the reference
client implementation for it.
"""

import json
import random
import socket
import sys
import threading
import time

# Admission retry policy: the server's bounded queue rejects overload
# with code "resource-exhausted", which means "try again once load
# drains" — so back off exponentially (with jitter, or every rejected
# client retries in lockstep) up to a bounded number of attempts. Any
# other error (including "server is draining") is final.
MAX_ATTEMPTS = 6
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0

QUERIES = [
    {"gamma": 0.6, "min_size": 4, "sigma_min": 3, "eps_min": 0.5,
     "top_k": 10, "deadline_ms": 5000},
    {"gamma": 0.5, "min_size": 3, "sigma_min": 5, "eps_min": 0.3,
     "scope": "maximal", "deadline_ms": 5000},
]


def request(sock_path, payload):
    """One request -> one response on a fresh connection."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(sock_path)
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


def submit_with_retry(sock_path, payload):
    """Submits, retrying resource-exhausted rejects with jittered
    exponential backoff; returns the last response after at most
    MAX_ATTEMPTS tries."""
    for attempt in range(MAX_ATTEMPTS):
        response = request(sock_path, payload)
        if response.get("ok") or response.get("code") != "resource-exhausted":
            return response
        if attempt == MAX_ATTEMPTS - 1:
            break
        delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
        time.sleep(random.uniform(0, delay))
    return response


def run_query(sock_path, spec, slot, results):
    results[slot] = submit_with_retry(
        sock_path, {"op": "submit", "wait": True, "query": spec})


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} /path/to/scpm.sock", file=sys.stderr)
        return 2
    sock_path = sys.argv[1]

    results = [None] * len(QUERIES)
    workers = [
        threading.Thread(target=run_query, args=(sock_path, spec, i, results))
        for i, spec in enumerate(QUERIES)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    for spec, response in zip(QUERIES, results):
        if not response.get("ok"):
            print(f"query {spec} failed: {response}", file=sys.stderr)
            return 1
        query = response["query"]
        counters = query["counters"]
        print(f"query id={query['id']} state={query['state']} "
              f"exhausted={query['exhausted']}")
        print(f"  gamma={spec['gamma']} min_size={spec['min_size']} "
              f"sigma_min={spec['sigma_min']}")
        print(f"  queue_wait={query['queue_wait_ms']:.1f}ms "
              f"wall={query['wall_ms']:.1f}ms "
              f"memo_hits={query['memo_hits']} "
              f"memo_misses={query['memo_misses']}")
        print(f"  evaluated={counters['attribute_sets_evaluated']} "
              f"reported={counters['attribute_sets_reported']} "
              f"emitted={query['emitted']}")

    stats = request(sock_path, {"op": "stats"})
    memo = stats["memo"]
    print(f"server: submitted={stats['submitted']} "
          f"rejected={stats['rejected']} threads={stats['threads']}")
    if memo["enabled"]:
        print(f"memo: hit_rate={memo['hit_rate']:.2f} "
              f"entries={memo['entries']} bytes={memo['bytes']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
