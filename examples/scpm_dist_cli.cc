// scpm_dist_cli: mine structural correlation patterns across forked
// worker processes with leased batches and fault-tolerant retry
// (docs/DIST.md). Output is byte-identical to scpm_cli on the same
// graph and thresholds — the workers only change who does the work.
//
// Usage:
//   scpm_dist_cli <edges.txt> <attrs.txt> [options]
//
// Exit codes: 0 = mined to completion (distributed jobs always run the
// lattice to exhaustion), 1 = runtime error, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/ckpt_codec.h"
#include "core/report.h"
#include "core/request.h"
#include "core/statistics.h"
#include "dist/dist.h"
#include "graph/io.h"
#include "nullmodel/expectation.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::cerr << "usage: scpm_dist_cli <edges.txt> <attrs.txt> [--gamma G] "
               "[--min-size S] [--sigma-min N] [--eps-min E] "
               "[--delta-min D] [--top-k K] [--scope topk|maximal] "
               "[--order dfs|bfs] [--top-n N] [--sink accumulate|jsonl] "
               "[--out FILE] [--workers W] [--batch-entries N] "
               "[--batch-evals N] [--worker-wave N] [--lease-ms MS] "
               "[--max-retries N] [--backoff-ms MS] [--state-dir DIR] "
               "[--checkpoint-interval-ms MS] [--ckpt-format text|binary]\n"
               "run scpm_dist_cli --help for the full flag reference\n";
}

// The flag table below is contract: scripts/check_docs.py diffs the
// "--flag" lines against docs/CLI.md, so a new flag must land in both
// (the ctest docs_drift gate fails otherwise).
void Help() {
  std::cout <<
      "scpm_dist_cli: distributed fault-tolerant structural correlation "
      "pattern mining\n"
      "\n"
      "usage: scpm_dist_cli <edges.txt> <attrs.txt> [options]\n"
      "\n"
      "  edges.txt : one \"u v\" edge per line ('#' comments allowed)\n"
      "  attrs.txt : one \"v name1 name2 ...\" line per vertex\n"
      "\n"
      "Mining options (defaults in parentheses):\n"
      "  --gamma G          quasi-clique density threshold in (0, 1] (0.5)\n"
      "  --min-size S       minimum quasi-clique size (5)\n"
      "  --sigma-min N      minimum attribute-set support (10)\n"
      "  --eps-min E        minimum structural correlation (0.1)\n"
      "  --delta-min D      minimum normalized structural correlation;\n"
      "                     > 0 enables the max-exp null model (0)\n"
      "  --top-k K          patterns reported per attribute set (5)\n"
      "  --scope V          topk (SCPM) or maximal (SCORP) (topk)\n"
      "  --order V          dfs or bfs candidate search order (dfs)\n"
      "\n"
      "Output options:\n"
      "  --top-n N          rows printed per ranking table (10)\n"
      "  --sink V           accumulate (full result, O(output) memory) or\n"
      "                     jsonl (streaming, O(frontier)) (accumulate)\n"
      "  --out FILE         jsonl destination (stdout)\n"
      "\n"
      "Distribution options (never change what is mined):\n"
      "  --workers W        worker processes forked at start (2)\n"
      "  --batch-entries N  frontier entries leased per batch (8)\n"
      "  --batch-evals N    evaluation budget per lease; a worker cuts\n"
      "                     its batch here and returns the remainder (256)\n"
      "  --worker-wave N    worker frontier wave size = heartbeat\n"
      "                     granularity (4)\n"
      "  --lease-ms MS      lease deadline; a worker silent this long is\n"
      "                     revoked and its batch re-queued (2000)\n"
      "  --max-retries N    re-queue attempts per batch before the\n"
      "                     coordinator mines it inline (3)\n"
      "  --backoff-ms MS    base backoff before a failed batch re-leases,\n"
      "                     doubling per attempt (50)\n"
      "\n"
      "Durability options:\n"
      "  --state-dir DIR    journal the job under DIR and snapshot the\n"
      "                     un-merged frontier; a coordinator restarted on\n"
      "                     the same DIR after a crash resumes the job\n"
      "                     (requires --sink jsonl --out FILE)\n"
      "  --checkpoint-interval-ms MS  snapshot cadence under --state-dir\n"
      "                     (200)\n"
      "  --ckpt-format V    encoding for batch frames and --state-dir\n"
      "                     snapshots: binary (compact interned v2) or\n"
      "                     text (v1); workers mirror the coordinator's\n"
      "                     choice and recovery auto-detects (binary)\n"
      "\n"
      "Other:\n"
      "  --help             print this reference and exit 0\n"
      "\n"
      "Worker pids are announced on stderr (\"dist: worker I pid P\") so\n"
      "harnesses can aim signals at one. Per-worker lease stats print\n"
      "after the run.\n"
      "\n"
      "Exit codes: 0 = mined to completion, 1 = runtime error, 2 = usage\n"
      "error. Distributed jobs take no budget flags: every job runs the\n"
      "lattice to exhaustion (lease failures are retried, then mined\n"
      "inline by the coordinator, so the job always terminates).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      Help();
      return 0;
    }
  }
  if (argc < 3) {
    Usage();
    return 2;
  }
  scpm::MiningRequest request;
  scpm::ScpmOptions& options = request.options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 5;
  options.min_support = 10;
  options.min_epsilon = 0.1;
  options.top_k = 5;
  scpm::dist::DistOptions dist;
  std::size_t top_n = 10;
  std::string out_path;

  for (int i = 3; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "flag " << flag << " is missing its value\n";
      Usage();
      return 2;
    }
    const char* value = argv[i + 1];
    if (flag == "--gamma") {
      options.quasi_clique.gamma = std::atof(value);
    } else if (flag == "--min-size") {
      options.quasi_clique.min_size =
          static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--sigma-min") {
      options.min_support = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--eps-min") {
      options.min_epsilon = std::atof(value);
    } else if (flag == "--delta-min") {
      options.min_delta = std::atof(value);
    } else if (flag == "--top-k") {
      options.top_k = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--scope") {
      if (std::strcmp(value, "maximal") == 0) {
        options.pattern_scope = scpm::PatternScope::kAllMaximal;
      } else if (std::strcmp(value, "topk") == 0) {
        options.pattern_scope = scpm::PatternScope::kTopK;
      } else {
        std::cerr << "unknown --scope: " << value << "\n";
        Usage();
        return 2;
      }
    } else if (flag == "--order") {
      options.search_order = std::strcmp(value, "bfs") == 0
                                 ? scpm::SearchOrder::kBfs
                                 : scpm::SearchOrder::kDfs;
    } else if (flag == "--top-n") {
      top_n = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--sink") {
      if (std::strcmp(value, "accumulate") == 0) {
        request.sink = scpm::MiningRequest::Sink::kAccumulate;
      } else if (std::strcmp(value, "jsonl") == 0) {
        request.sink = scpm::MiningRequest::Sink::kJsonl;
      } else {
        std::cerr << "unknown --sink: " << value << "\n";
        Usage();
        return 2;
      }
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--workers") {
      dist.workers = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--batch-entries") {
      dist.batch_entries = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--batch-evals") {
      dist.batch_evals = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--worker-wave") {
      dist.worker_wave = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--lease-ms") {
      dist.lease_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--max-retries") {
      dist.max_retries = static_cast<std::uint32_t>(std::atoi(value));
    } else if (flag == "--backoff-ms") {
      dist.backoff_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--state-dir") {
      dist.state_dir = value;
    } else if (flag == "--checkpoint-interval-ms") {
      dist.checkpoint_interval_ms =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--ckpt-format") {
      scpm::Result<scpm::CheckpointFormat> parsed =
          scpm::ParseCheckpointFormat(value);
      if (!parsed.ok()) {
        std::cerr << "unknown --ckpt-format: " << value
                  << " (want text or binary)\n";
        Usage();
        return 2;
      }
      dist.ckpt_format = *parsed;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      Usage();
      return 2;
    }
  }

  const bool jsonl = request.sink == scpm::MiningRequest::Sink::kJsonl;
  const bool jsonl_on_stdout = jsonl && out_path.empty();
  std::ostream& info = jsonl_on_stdout ? std::cerr : std::cout;
  if (jsonl_on_stdout) {
    request.jsonl_stream = &std::cout;
  } else {
    request.jsonl_path = out_path;
  }
  if (!dist.state_dir.empty() && (!jsonl || out_path.empty())) {
    // Crash recovery truncates the output file back to the snapshot's
    // line count — impossible on a stream or an accumulate sink.
    std::cerr << "--state-dir requires --sink jsonl and --out FILE\n";
    Usage();
    return 2;
  }
  scpm::Status valid = request.Validate();
  if (valid.ok()) valid = dist.Validate();
  if (!valid.ok()) {
    std::cerr << "invalid request: " << valid << "\n";
    Usage();
    return 2;
  }

  scpm::Result<scpm::AttributedGraph> graph =
      scpm::LoadAttributedGraph(argv[1], argv[2]);
  if (!graph.ok()) {
    std::cerr << "load failed: " << graph.status() << "\n";
    return 1;
  }
  info << "loaded " << graph->NumVertices() << " vertices, "
       << graph->graph().NumEdges() << " edges, "
       << graph->NumAttributes() << " attributes\n";

  std::unique_ptr<scpm::MaxExpectationModel> null_model;
  if (options.min_delta > 0.0) {
    null_model = std::make_unique<scpm::MaxExpectationModel>(
        graph->graph(), options.quasi_clique);
  }

  dist.on_worker_spawn = [](std::size_t index, long pid) {
    // One line per worker, parseable, on stderr: the CI kill harness
    // reads these to aim kill(2) at a worker mid-run.
    std::cerr << "dist: worker " << index << " pid " << pid << "\n";
  };

  scpm::dist::DistStats stats;
  scpm::WallTimer timer;
  scpm::Result<scpm::MiningResponse> response =
      scpm::dist::Mine(*graph, request, dist, null_model.get(), &stats);
  if (!response.ok()) {
    std::cerr << "mining failed: " << response.status() << "\n";
    return 1;
  }
  const scpm::MiningRun& run = response->run;

  info << "mined " << run.emitted << " attribute sets / "
       << run.patterns_emitted << " patterns in " << timer.ElapsedSeconds()
       << " s across " << dist.workers << " workers"
       << (stats.recovered ? " (resumed from journal)" : "") << "\n"
       << "counters: " << scpm::FormatScpmCounters(run.counters) << "\n"
       << "dist: batches=" << stats.batches
       << " retries=" << stats.retries
       << " heartbeat_timeouts=" << stats.heartbeat_timeouts
       << " worker_exits=" << stats.worker_exits
       << " corrupt_results=" << stats.corrupt_results
       << " worker_failures=" << stats.worker_failures
       << " inline_fallbacks=" << stats.inline_fallbacks
       << " backoff_ms=" << stats.backoff_ms_total << "\n";
  for (std::size_t i = 0; i < stats.workers.size(); ++i) {
    const scpm::dist::DistWorkerStats& ws = stats.workers[i];
    info << "dist: worker " << i << " batches=" << ws.batches
         << " reassignments=" << ws.reassignments
         << " retries=" << ws.retries << " backoff_ms=" << ws.backoff_ms
         << "\n";
  }
  for (const scpm::dist::DistEvent& event : stats.events) {
    info << "dist: lease failure [" << scpm::StatusCodeToString(event.code)
         << "] " << event.detail << "\n";
  }
  info << "\n";

  if (request.sink == scpm::MiningRequest::Sink::kAccumulate) {
    scpm::PrintTopAttributeSets(std::cout, *graph,
                                response->result.attribute_sets, top_n);
    std::cout << "\n";
    scpm::PrintPatternTable(std::cout, *graph, response->result);
  }
  return 0;
}
