// gen_dataset: write a synthetic attributed graph to disk in the text
// format consumed by scpm_cli (edge list + attribute file).
//
// Usage:
//   gen_dataset <dblp|lastfm|citeseer|small> <scale> <out_prefix> [seed]
//
// Produces <out_prefix>.edges and <out_prefix>.attrs plus a ground-truth
// file <out_prefix>.truth listing the planted communities and their
// topics (one community per line: "topic_attrs : member vertices").

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "datasets/synthetic.h"
#include "graph/io.h"

int main(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: gen_dataset <dblp|lastfm|citeseer|small> <scale> "
                 "<out_prefix> [seed]\n";
    return 2;
  }
  const std::string kind = argv[1];
  const double scale = std::atof(argv[2]);
  const std::string prefix = argv[3];

  scpm::SyntheticConfig config;
  if (kind == "dblp") {
    config = scpm::DblpLikeConfig(scale);
  } else if (kind == "lastfm") {
    config = scpm::LastFmLikeConfig(scale);
  } else if (kind == "citeseer") {
    config = scpm::CiteSeerLikeConfig(scale);
  } else if (kind == "small") {
    config = scpm::SmallDblpConfig(scale);
  } else {
    std::cerr << "unknown dataset kind: " << kind << "\n";
    return 2;
  }
  if (argc > 4) config.seed = std::strtoull(argv[4], nullptr, 10);

  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }

  const std::string edges_path = prefix + ".edges";
  const std::string attrs_path = prefix + ".attrs";
  scpm::Status status =
      scpm::SaveAttributedGraph(dataset->graph, edges_path, attrs_path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status << "\n";
    return 1;
  }

  std::ofstream truth(prefix + ".truth");
  truth << "# planted communities: topic attributes : member vertices\n";
  for (std::size_t c = 0; c < dataset->communities.size(); ++c) {
    const scpm::AttributeSet& topic =
        dataset->topics[dataset->community_topic[c]];
    for (std::size_t i = 0; i < topic.size(); ++i) {
      truth << (i ? " " : "")
            << dataset->graph.AttributeName(topic[i]);
    }
    truth << " :";
    for (scpm::VertexId v : dataset->communities[c].members) {
      truth << " " << v;
    }
    truth << "\n";
  }

  std::cout << "wrote " << edges_path << " (" << dataset->graph.NumVertices()
            << " vertices, " << dataset->graph.graph().NumEdges()
            << " edges), " << attrs_path << " ("
            << dataset->graph.NumAttributes() << " attributes), and "
            << prefix << ".truth (" << dataset->communities.size()
            << " communities)\n";
  std::cout << "try: scpm_cli " << edges_path << " " << attrs_path
            << " --gamma 0.5 --min-size 8 --sigma-min 25 --eps-min 0.1\n";
  return 0;
}
