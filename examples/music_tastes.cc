// Music-network scenario (the paper's LastFm case study, §4.1.2).
//
// LastFm-like analogue: a very sparse friendship graph where vertex
// attributes are listened-to artists. Musical tastes (artist sets) that
// induce friend communities get high structural correlation; hugely
// popular artists get high support but low normalized correlation.
// Demonstrates the delta_lb ranking and the sim-exp / max-exp comparison
// on concrete support values.
//
// Usage: music_tastes [scale]   (default scale 0.4)

#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/scpm.h"
#include "datasets/synthetic.h"
#include "graph/metrics.h"
#include "nullmodel/expectation.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.4;
  std::cout << "Generating LastFm-like music network (scale " << scale
            << ")...\n";
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::LastFmLikeConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  std::cout << "  " << graph.NumVertices() << " users, "
            << graph.graph().NumEdges() << " friendships, "
            << graph.NumAttributes() << " artists\n";

  // Paper LastFm parameters: gamma=0.5, min_size=5.
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 5;
  options.min_support = 15;
  options.min_epsilon = 0.02;
  options.top_k = 3;

  scpm::Graph topology = graph.graph();
  scpm::MaxExpectationModel max_model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &max_model);
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  scpm::PrintTopAttributeSets(std::cout, graph, result->attribute_sets, 10);

  // Compare the two null models on a few supports (paper Figure 7).
  std::cout << "\nExpected structural correlation (sim-exp vs max-exp):\n";
  scpm::SimExpectationModel sim_model(topology, options.quasi_clique,
                                      /*num_samples=*/20, /*seed=*/1);
  for (std::size_t support :
       {std::size_t{50}, std::size_t{150}, std::size_t{400}}) {
    if (support > graph.NumVertices()) break;
    std::cout << "  sigma=" << support
              << "  sim-exp=" << sim_model.Expectation(support)
              << "  max-exp=" << max_model.Expectation(support) << "\n";
  }

  std::cout << "\nLargest taste community found:\n";
  if (!result->patterns.empty()) {
    std::cout << "  " << FormatPattern(graph, result->patterns.front())
              << "\n";
  }
  return 0;
}
